"""The gateway: HTTP surface + service orchestration.

:class:`SchedulerService` wires the subsystem together — state store,
ingestion pipeline, rate limiter, slot ticker, checkpoints — and owns
the start/resume/shutdown lifecycle.  :class:`ServiceHTTPServer` (a
stdlib ``ThreadingHTTPServer``; no third-party web stack required)
exposes it as REST/JSON:

========  =========================  =========================================
method    path                       purpose
========  =========================  =========================================
POST      ``/v1/jobs``               submit jobs (202; 429 on backpressure or
                                     rate limit, with ``Retry-After``)
POST      ``/v1/admin/tick``         advance N slots (manual-tick mode)
POST      ``/v1/admin/checkpoint``   force a ckpt-v1 snapshot now
POST      ``/v1/admin/shutdown``     checkpoint, stop ticking, exit cleanly
GET       ``/v1/health``             liveness + slot/backlog gauges
GET       ``/v1/config``             the instance's full configuration
GET       ``/v1/accounts``           accounts, job types and arrival bounds
GET       ``/v1/queues``             live queue backlogs
GET       ``/v1/placement``          last slot's per-site work placement
GET       ``/v1/fairness``           cumulative account work vs fair shares
GET       ``/v1/metrics``            obs registries + service counters
GET       ``/v1/stats``              summary-so-far (SimulationSummary shape)
GET       ``/v1/slots``              per-slot records (``?start=&count=``)
========  =========================  =========================================

Every mutating or reading touch of the model state happens under one
service-wide lock shared with the ticker, so a query never observes a
half-applied slot and a tick never interleaves with a checkpoint.
"""

from __future__ import annotations

import json
import sys
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from typing import Optional, Tuple
from urllib.parse import parse_qs, urlparse

from repro.obs.registry import metrics_registry, stats_registry
from repro.service.ingest import IntakeBuffer, Ingestor, SubmissionLog
from repro.service.ratelimit import AccountRateLimiter
from repro.service.state import ServiceConfig, ServiceState
from repro.service.ticker import CapacityExhausted, SlotTicker
from repro.service.wire import (
    MAX_BODY_BYTES,
    WireError,
    error_body,
    ok_body,
    parse_json_body,
    parse_submission,
)
from repro.tools import tsan

__all__ = ["SchedulerService", "ServiceHTTPServer", "serve"]


class SchedulerService:
    """One live scheduler instance: state, ingestion, ticking, recovery.

    Parameters
    ----------
    config:
        The frozen :class:`ServiceConfig`.
    resume:
        When True, adopt the newest ckpt-v1 snapshot for this config
        digest (if any) and re-stage every write-ahead-log submission
        newer than it; acknowledged work is never lost.  When False the
        instance starts fresh: the old log is rotated aside and any
        stale checkpoint cleared.
    """

    def __init__(self, config: ServiceConfig, resume: bool = False) -> None:
        self.config = config
        self.lock = tsan.named_lock("SchedulerService.lock", reentrant=True)
        self.state = ServiceState(config)
        config.instance_dir.mkdir(parents=True, exist_ok=True)
        self.log = SubmissionLog(config.wal_path)
        buffer = IntakeBuffer(
            config.intake_capacity, self.state.cluster.num_job_types
        )
        self.limiter = AccountRateLimiter(
            self.state.cluster.num_accounts,
            rate=config.rate,
            burst=config.burst,
            clock=stats_registry().clock,
        )
        self.ingestor = Ingestor(
            buffer,
            self.log,
            self.limiter,
            retry_after_slots=config.slot_seconds or 1.0,
        )
        self.checkpointer = config.checkpointer()
        self.ticker = SlotTicker(
            self.state, self.ingestor, self.limiter, self.checkpointer, self.lock
        )
        self.resumed_from_slot: Optional[int] = None
        self.recovered_submissions = 0
        if resume:
            self._recover()
        else:
            self.log.rotate()
            self.checkpointer.clear()
        stats_registry().counter_add("service.starts")

    # ------------------------------------------------------------------
    def _recover(self) -> None:
        """Resume from checkpoint + write-ahead log (see class docstring)."""
        payload = self.checkpointer.load()
        horizon_seq = 1
        if payload is not None:
            self.state.restore(payload)
            self.ingestor.buffer.restore(payload["pending"])
            self.ingestor.set_next_seq(int(payload["next_seq"]))
            self.ingestor.restore_counters(payload.get("ingest_counters", {}))
            self.limiter.restore(payload.get("ratelimit", {}))
            horizon_seq = int(payload["next_seq"])
            self.resumed_from_slot = self.state.next_slot
        # Everything acknowledged after the snapshot (or everything, if
        # no snapshot exists) lives only in the log — re-stage it.
        missing = [r for r in self.log.replay() if r.seq >= horizon_seq]
        self.recovered_submissions = self.ingestor.recover(missing)
        stats_registry().counter_add(
            "service.recovered_submissions", self.recovered_submissions
        )

    # ------------------------------------------------------------------
    # Request-level operations (called from handler threads)
    # ------------------------------------------------------------------
    def submit(self, payload: dict) -> Tuple[int, dict, dict]:
        """``POST /v1/jobs`` → ``(status, body, extra_headers)``."""
        request = parse_submission(payload, self.state.cluster)
        record, reason, retry_after = self.ingestor.submit(request)
        reg = stats_registry()
        if record is None:
            reg.counter_add(f"service.submissions.{reason}")
            return (
                429,
                error_body(
                    reason,
                    "intake buffer is full; retry later"
                    if reason == "backpressure"
                    else "account rate limit exceeded; retry later",
                    retry_after=retry_after,
                ),
                {"Retry-After": str(int(max(1, round(retry_after))))},
            )
        reg.counter_add("service.submissions.accepted")
        reg.counter_add("service.jobs.accepted", record.count)
        return (
            202,
            ok_body(
                submission_id=record.submission_id,
                seq=record.seq,
                account=record.account,
                job_type=record.job_type,
                count=record.count,
                pending_jobs=self.ingestor.buffer.pending_jobs,
            ),
            {},
        )

    def tick(self, slots: int) -> Tuple[int, dict, dict]:
        """``POST /v1/admin/tick`` → advance *slots* slots now."""
        if slots < 1:
            raise WireError(400, "bad_field", "'slots' must be >= 1")
        try:
            records = self.ticker.tick(slots)
        except CapacityExhausted as exc:
            return 409, error_body("capacity_exhausted", str(exc)), {}
        return (
            200,
            ok_body(
                ticked=len(records),
                next_slot=self.state.next_slot,
                records=records,
            ),
            {},
        )

    def health(self) -> dict:
        with self.lock:
            return ok_body(
                status="ok",
                scheduler=self.state.scheduler.name,
                next_slot=self.state.next_slot,
                capacity_slots=self.config.capacity_slots,
                pending_jobs=self.ingestor.buffer.pending_jobs,
                queue_backlog=float(self.state.queues.total_backlog()),
                resumed_from_slot=self.resumed_from_slot,
                recovered_submissions=self.recovered_submissions,
            )

    def queues_view(self) -> dict:
        with self.lock:
            queues = self.state.queues
            return ok_body(
                next_slot=self.state.next_slot,
                front=[float(q) for q in queues.front],
                dc=[[float(q) for q in row] for row in queues.dc],
                total_backlog=float(queues.total_backlog()),
                max_queue_length=float(queues.max_queue_length()),
            )

    def placement_view(self) -> dict:
        with self.lock:
            last = self.state.slot_records[-1] if self.state.slot_records else None
            return ok_body(
                next_slot=self.state.next_slot,
                last_slot=last,
                datacenters=self.state.cluster.num_datacenters,
            )

    def fairness_view(self) -> dict:
        with self.lock:
            return ok_body(**self.state.fairness_view())

    def metrics_view(self) -> dict:
        with self.lock:
            service = {
                **self.ingestor.counters(),
                "ticks_completed": self.ticker.ticks_completed,
                "next_slot": self.state.next_slot,
                "admitted_jobs": float(self.state.admitted_total),
            }
            return ok_body(
                service=service,
                stats=stats_registry().snapshot(),
                obs=metrics_registry().snapshot(),
            )

    def stats_view(self) -> dict:
        with self.lock:
            summary = self.state.metrics.summary(
                self.state.scheduler.name,
                self.state.queues,
                arrived=self.state.admitted_total,
            )
            return ok_body(summary=summary.as_dict())

    def slots_view(self, start: int = 0, count: Optional[int] = None) -> dict:
        with self.lock:
            records = self.state.slot_records[start:]
            if count is not None:
                records = records[:count]
            return ok_body(
                completed_slots=self.state.next_slot,
                start=start,
                records=records,
            )

    def accounts_view(self) -> dict:
        cluster = self.state.cluster
        return ok_body(
            accounts=[
                {
                    "account": m,
                    "fair_share": float(cluster.fair_shares[m]),
                    "job_types": [
                        {
                            "job_type": j,
                            "name": jt.name,
                            "demand": float(jt.demand),
                            "max_arrivals": int(jt.max_arrivals),
                        }
                        for j, jt in enumerate(cluster.job_types)
                        if jt.account == m
                    ],
                }
                for m in range(cluster.num_accounts)
            ]
        )

    # ------------------------------------------------------------------
    def start_ticking(self) -> None:
        """Start wall-clock pacing when the config asks for it."""
        if self.config.slot_seconds is not None:
            self.ticker.start(self.config.slot_seconds)

    def shutdown(self) -> None:
        """Graceful stop: halt pacing, write a final checkpoint, close."""
        # Pacing stops *before* the lock is taken: the pacing thread
        # may be inside tick() waiting for it (see SlotTicker.stop).
        self.ticker.stop()
        with self.lock:
            self.ticker.save_checkpoint()
            # Final WAL close under the lock: ticking has stopped and no
            # further submit can be acknowledged past this point.
            self.log.close()  # staticcheck: ignore[GF012] -- shutdown-only close after ticking stopped; nothing can contend
        stats_registry().counter_add("service.shutdowns")


class _Handler(BaseHTTPRequestHandler):
    """Route table + envelope plumbing; all logic lives in the service."""

    server_version = "repro-gateway/1.0"
    protocol_version = "HTTP/1.1"
    # Nagle + delayed ACK costs ~40ms per request on keep-alive
    # connections; a submission gateway lives or dies by round trips.
    disable_nagle_algorithm = True

    @property
    def service(self) -> SchedulerService:
        return self.server.service  # type: ignore[attr-defined]

    # -- plumbing ------------------------------------------------------
    def log_message(self, format: str, *args) -> None:  # noqa: A002
        pass  # per-request stderr noise off; obs counters cover it

    def _reply(self, status: int, body: dict, headers: Optional[dict] = None) -> None:
        raw = json.dumps(body).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(raw)))
        for key, value in (headers or {}).items():
            self.send_header(key, value)
        self.end_headers()
        self.wfile.write(raw)

    def _read_body(self) -> dict:
        length = int(self.headers.get("Content-Length") or 0)
        if length > MAX_BODY_BYTES:
            raise WireError(413, "body_too_large", "request body too large")
        return parse_json_body(self.rfile.read(length) if length else b"")

    # -- routes --------------------------------------------------------
    def do_GET(self) -> None:  # noqa: N802
        service = self.service
        parsed = urlparse(self.path)
        try:
            if parsed.path == "/v1/health":
                self._reply(200, service.health())
            elif parsed.path == "/v1/config":
                self._reply(200, ok_body(config=service.config.as_dict()))
            elif parsed.path == "/v1/accounts":
                self._reply(200, service.accounts_view())
            elif parsed.path == "/v1/queues":
                self._reply(200, service.queues_view())
            elif parsed.path == "/v1/placement":
                self._reply(200, service.placement_view())
            elif parsed.path == "/v1/fairness":
                self._reply(200, service.fairness_view())
            elif parsed.path == "/v1/metrics":
                self._reply(200, service.metrics_view())
            elif parsed.path == "/v1/stats":
                self._reply(200, service.stats_view())
            elif parsed.path == "/v1/slots":
                query = parse_qs(parsed.query)
                start = int(query.get("start", ["0"])[0])
                count_raw = query.get("count", [None])[0]
                count = None if count_raw is None else int(count_raw)
                self._reply(200, service.slots_view(start=start, count=count))
            else:
                self._reply(404, error_body("not_found", f"no route {parsed.path}"))
        except WireError as exc:
            self._reply(exc.status, error_body(exc.code, exc.detail))
        except ValueError as exc:
            self._reply(400, error_body("bad_query", str(exc)))

    def do_POST(self) -> None:  # noqa: N802
        service = self.service
        path = urlparse(self.path).path
        try:
            if path == "/v1/jobs":
                status, body, headers = service.submit(self._read_body())
                self._reply(status, body, headers)
            elif path == "/v1/admin/tick":
                body = self._read_body()
                slots = body.get("slots", 1)
                if isinstance(slots, bool) or not isinstance(slots, int):
                    raise WireError(400, "bad_field", "'slots' must be an integer")
                status, reply, headers = service.tick(slots)
                self._reply(status, reply, headers)
            elif path == "/v1/admin/checkpoint":
                service.ticker.save_checkpoint()
                self._reply(
                    200, ok_body(checkpointed=True, next_slot=service.state.next_slot)
                )
            elif path == "/v1/admin/shutdown":
                self._reply(200, ok_body(stopping=True))
                # shutdown() must run off this handler thread: it joins
                # the server loop, which is still serving this reply.
                threading.Thread(
                    target=self.server.stop_from_handler,  # type: ignore[attr-defined]
                    daemon=True,
                ).start()
            else:
                self._reply(404, error_body("not_found", f"no route {path}"))
        except WireError as exc:
            self._reply(exc.status, error_body(exc.code, exc.detail))


class ServiceHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer bound to one :class:`SchedulerService`."""

    daemon_threads = True

    def __init__(self, address: Tuple[str, int], service: SchedulerService) -> None:
        super().__init__(address, _Handler)
        self.service = service

    def stop_from_handler(self) -> None:
        """Graceful shutdown path for ``POST /v1/admin/shutdown``."""
        self.service.shutdown()
        self.shutdown()


def serve(
    config: ServiceConfig,
    host: str = "127.0.0.1",
    port: int = 0,
    resume: bool = False,
) -> int:
    """Run the gateway until shut down; returns a process exit code.

    Binds first (port 0 = ephemeral), prints the listening URL on a
    line of its own — test harnesses parse it — then starts wall-clock
    ticking (if configured) and serves forever.
    """
    service = SchedulerService(config, resume=resume)
    server = ServiceHTTPServer((host, port), service)
    actual_host, actual_port = server.server_address[:2]
    print(f"listening on http://{actual_host}:{actual_port}", flush=True)
    if service.resumed_from_slot is not None:
        print(
            f"resumed from checkpoint at slot {service.resumed_from_slot} "
            f"({service.recovered_submissions} submissions recovered from log)",
            flush=True,
        )
    service.start_ticking()
    try:
        server.serve_forever(poll_interval=0.1)
    except KeyboardInterrupt:
        service.shutdown()
    finally:
        server.server_close()
    if tsan.enabled() and tsan.reports():
        # Sanitizer drills run the real server binary; a dirty shutdown
        # must fail the drill via the exit code, not just a log line.
        for finding in tsan.reports():
            print(finding.render(), file=sys.stderr)
        return 1
    return 0
