"""Per-account token-bucket rate limits for the submission gateway.

Each account owns one bucket: capacity ``burst`` jobs, refilled at
``rate`` jobs/second.  A submission of ``count`` jobs spends ``count``
tokens; when the bucket cannot cover it the gateway answers 429 with a
``Retry-After`` derived from the exact deficit, so a well-behaved
client backs off just long enough instead of hammering.

The limiter never reads the clock itself — callers inject a monotonic
``clock`` callable (production passes the obs registry's clock, tests a
fake) — which keeps the arithmetic deterministic and unit-testable to
the token.
"""

from __future__ import annotations

import math
from typing import Callable, Dict, Optional, Tuple

from repro._validation import require_positive
from repro.tools import tsan

__all__ = ["AccountRateLimiter", "TokenBucket"]


class TokenBucket:
    """One account's bucket: ``burst`` capacity, ``rate`` tokens/second."""

    __slots__ = ("rate", "burst", "_tokens", "_updated")

    def __init__(self, rate: float, burst: float) -> None:
        require_positive(rate, "rate")
        require_positive(burst, "burst")
        self.rate = float(rate)
        self.burst = float(burst)
        self._tokens = float(burst)
        self._updated: Optional[float] = None

    def _refill(self, now: float) -> None:
        if self._updated is not None:
            elapsed = max(now - self._updated, 0.0)
            self._tokens = min(self.burst, self._tokens + elapsed * self.rate)
        self._updated = now

    def try_take(self, count: float, now: float) -> Tuple[bool, float]:
        """Spend *count* tokens at time *now*.

        Returns ``(granted, retry_after_seconds)``; ``retry_after`` is
        0 on grant, else the exact time until the bucket covers the
        request (capped requests are validated upstream against the
        burst, so the wait is always finite).
        """
        self._refill(now)
        if count <= self._tokens:
            self._tokens -= count
            return True, 0.0
        deficit = min(count, self.burst) - self._tokens
        return False, deficit / self.rate

    @property
    def tokens(self) -> float:
        """Tokens available as of the last refill (monitoring only)."""
        return self._tokens

    def state(self) -> dict:
        """Picklable snapshot for the service checkpoint."""
        return {"tokens": self._tokens, "updated": self._updated}

    def restore(self, state: dict) -> None:
        self._tokens = float(state["tokens"])
        self._updated = state["updated"]


class AccountRateLimiter:
    """Token buckets keyed by account index, shared by the HTTP threads.

    Parameters
    ----------
    num_accounts:
        How many accounts the cluster defines; unknown indices are the
        wire layer's problem, not the limiter's.
    rate:
        Sustained jobs/second allowed per account.
    burst:
        Bucket capacity — the largest instantaneous batch budget.
    clock:
        Monotonic-seconds callable (injected; see module docstring).
    """

    def __init__(
        self,
        num_accounts: int,
        rate: float,
        burst: float,
        clock: Callable[[], float],
    ) -> None:
        self.rate = float(rate)
        self.burst = float(burst)
        self._clock = clock
        self._lock = tsan.named_lock("AccountRateLimiter._lock")
        self._buckets: Dict[int, TokenBucket] = {  # guarded-by: self._lock
            account: TokenBucket(rate, burst) for account in range(num_accounts)
        }
        tsan.watch(self)

    def admit(self, account: int, count: float) -> Tuple[bool, float]:
        """Charge *count* jobs to *account*; ``(granted, retry_after)``.

        ``retry_after`` is rounded up to whole seconds (HTTP
        ``Retry-After`` is integral) with a floor of 1.
        """
        now = self._clock()
        with self._lock:
            granted, wait = self._buckets[account].try_take(float(count), now)
        if granted:
            return True, 0.0
        return False, float(max(1, math.ceil(wait)))

    def tokens(self, account: int) -> float:
        with self._lock:
            return self._buckets[account].tokens

    # ------------------------------------------------------------------
    # Checkpoint integration
    # ------------------------------------------------------------------
    def state(self) -> dict:
        """Picklable per-account bucket levels for the checkpoint."""
        with self._lock:
            return {
                account: bucket.state()
                for account, bucket in self._buckets.items()
            }

    def restore(self, state: dict) -> None:
        """Restore bucket levels saved by :meth:`state`.

        Buckets restored from a checkpoint refill from their *saved*
        update stamp; because the clock is monotonic with an arbitrary
        epoch, a restart resets stamps so accounts start from their
        saved token level and refill from "now".
        """
        with self._lock:
            for account, bucket_state in state.items():
                bucket = self._buckets.get(int(account))
                if bucket is None:
                    continue
                bucket.restore({"tokens": bucket_state["tokens"], "updated": None})
