"""Scheduler-as-a-service: a live job-submission gateway around GreFar.

The paper's algorithm is online by construction — each slot's decision
uses only current queue state — so nothing about it *requires* batch
replay.  This package promotes the simulator into a long-running
service (ROADMAP item 2): an HTTP gateway accepts streaming submissions
from many accounts through a bounded, rate-limited ingestion pipeline,
a ticker advances GreFar slot by slot, and live endpoints answer
placement/queue/fairness/metrics queries.

Layering (each module depends only on those above it):

* :mod:`~repro.service.wire` — JSON schemas and request validation
* :mod:`~repro.service.ratelimit` — per-account token buckets
* :mod:`~repro.service.ingest` — bounded intake, write-ahead log
* :mod:`~repro.service.state` — config + model state + checkpoints
* :mod:`~repro.service.ticker` — the slot loop (mirrors ``Simulator``)
* :mod:`~repro.service.app` — the HTTP gateway and lifecycle
* :mod:`~repro.service.client` — a stdlib Python client

Two properties tie the live path to the offline golden-trace regime
(``tests/test_service*.py`` pin both):

1. **Replay equivalence** — pushing the accepted-arrival log through
   the offline ``Simulator`` reproduces the service's per-slot metrics
   bit-identically.
2. **Crash safety** — a killed gateway restarts from its ckpt-v1
   snapshot plus write-ahead log with every acknowledged submission
   intact.
"""

from repro.service.app import SchedulerService, ServiceHTTPServer, serve
from repro.service.client import ServiceClient, ServiceClientError
from repro.service.ingest import (
    IntakeBuffer,
    Ingestor,
    SubmissionLog,
    SubmissionRecord,
)
from repro.service.ratelimit import AccountRateLimiter, TokenBucket
from repro.service.state import ServiceConfig, ServiceState
from repro.service.ticker import CapacityExhausted, SlotTicker, tick_once
from repro.service.wire import (
    SERVICE_SCHEMA,
    SubmissionRequest,
    WireError,
    error_body,
    ok_body,
    parse_json_body,
    parse_submission,
)

__all__ = [
    "SERVICE_SCHEMA",
    "AccountRateLimiter",
    "CapacityExhausted",
    "IntakeBuffer",
    "Ingestor",
    "SchedulerService",
    "ServiceClient",
    "ServiceClientError",
    "ServiceConfig",
    "ServiceHTTPServer",
    "ServiceState",
    "SlotTicker",
    "SubmissionLog",
    "SubmissionRecord",
    "SubmissionRequest",
    "TokenBucket",
    "WireError",
    "error_body",
    "ok_body",
    "parse_json_body",
    "parse_submission",
    "serve",
    "tick_once",
]
