"""A small stdlib client for the gateway (urllib; no dependencies).

:class:`ServiceClient` speaks the ``svc-v1`` wire protocol: JSON in,
JSON out, HTTP errors surfaced as :class:`ServiceClientError` with the
server's machine-readable code attached.  ``submit`` can optionally
honor backpressure for you — on a 429 it waits the server's
``Retry-After`` and retries, which is exactly the cooperative behavior
the bounded intake is designed around.

Used by ``examples/service_client.py``, the test suite and the CI smoke
drill; equally usable from a notebook against a long-running gateway.
"""

from __future__ import annotations

import json
import time
import urllib.error
import urllib.request
from typing import Optional

__all__ = ["ServiceClient", "ServiceClientError"]


class ServiceClientError(RuntimeError):
    """A non-2xx reply; carries status, server code and full body."""

    def __init__(self, status: int, body: dict) -> None:
        self.status = int(status)
        self.body = dict(body)
        self.code = str(body.get("error", "error"))
        self.retry_after = float(body.get("retry_after", 0.0) or 0.0)
        super().__init__(
            f"HTTP {status}: {self.code}: {body.get('detail', '(no detail)')}"
        )


class ServiceClient:
    """Talk to one gateway instance at *base_url*."""

    def __init__(self, base_url: str, timeout: float = 10.0) -> None:
        self.base_url = base_url.rstrip("/")
        self.timeout = float(timeout)

    # ------------------------------------------------------------------
    def _request(self, method: str, path: str, payload: Optional[dict] = None) -> dict:
        data = None
        headers = {"Accept": "application/json"}
        if payload is not None:
            data = json.dumps(payload).encode("utf-8")
            headers["Content-Type"] = "application/json"
        request = urllib.request.Request(
            self.base_url + path, data=data, headers=headers, method=method
        )
        try:
            with urllib.request.urlopen(request, timeout=self.timeout) as reply:
                return json.loads(reply.read().decode("utf-8"))
        except urllib.error.HTTPError as exc:
            try:
                body = json.loads(exc.read().decode("utf-8"))
            except (ValueError, UnicodeDecodeError):
                body = {"error": "http_error", "detail": str(exc)}
            if "retry_after" not in body:
                retry_header = exc.headers.get("Retry-After")
                if retry_header is not None:
                    body["retry_after"] = float(retry_header)
            raise ServiceClientError(exc.code, body) from None

    def get(self, path: str) -> dict:
        return self._request("GET", path)

    def post(self, path: str, payload: Optional[dict] = None) -> dict:
        return self._request("POST", path, payload if payload is not None else {})

    # ------------------------------------------------------------------
    # Typed convenience wrappers
    # ------------------------------------------------------------------
    def health(self) -> dict:
        return self.get("/v1/health")

    def config(self) -> dict:
        return self.get("/v1/config")["config"]

    def accounts(self) -> list:
        return self.get("/v1/accounts")["accounts"]

    def submit(
        self,
        account: int,
        job_type: int,
        count: int = 1,
        wait: bool = False,
        max_retries: int = 10,
    ) -> dict:
        """Submit *count* jobs; optionally wait out 429 backpressure.

        With ``wait=True`` a 429 (rate limit or full intake) sleeps the
        server's ``Retry-After`` and retries, up to *max_retries*
        times; permanent errors (4xx other than 429) raise immediately.
        """
        payload = {"account": account, "job_type": job_type, "count": count}
        attempts = 0
        while True:
            try:
                return self.post("/v1/jobs", payload)
            except ServiceClientError as exc:
                if not wait or exc.status != 429 or attempts >= max_retries:
                    raise
                attempts += 1
                time.sleep(max(exc.retry_after, 0.1))

    def tick(self, slots: int = 1) -> dict:
        return self.post("/v1/admin/tick", {"slots": slots})

    def checkpoint(self) -> dict:
        return self.post("/v1/admin/checkpoint")

    def shutdown(self) -> dict:
        return self.post("/v1/admin/shutdown")

    def queues(self) -> dict:
        return self.get("/v1/queues")

    def placement(self) -> dict:
        return self.get("/v1/placement")

    def fairness(self) -> dict:
        return self.get("/v1/fairness")

    def metrics(self) -> dict:
        return self.get("/v1/metrics")

    def stats(self) -> dict:
        return self.get("/v1/stats")["summary"]

    def slots(self, start: int = 0, count: Optional[int] = None) -> list:
        path = f"/v1/slots?start={start}"
        if count is not None:
            path += f"&count={count}"
        return self.get(path)["records"]
