"""Wire schemas: what crosses the gateway's HTTP boundary.

Every service payload is schema-versioned JSON.  The request side is
parsed defensively — the gateway faces arbitrary clients — and the
response side is produced by small helpers so every endpoint speaks the
same envelope:

* success: ``{"schema": "svc-v1", ...payload...}``
* error:   ``{"schema": "svc-v1", "error": <machine code>,
  "detail": <human sentence>, ...context...}``

Parsing raises :class:`WireError` (carrying the HTTP status to answer
with) instead of letting a malformed body surface as a 500 — a client
typo must never look like a gateway crash.
"""

from __future__ import annotations

import json
from dataclasses import dataclass
from typing import Any, Mapping

__all__ = [
    "SERVICE_SCHEMA",
    "SubmissionRequest",
    "WireError",
    "error_body",
    "ok_body",
    "parse_json_body",
    "parse_submission",
]

#: Version tag stamped on every request/response body; bump on shape
#: changes so stale clients fail loudly instead of misparsing.
SERVICE_SCHEMA = "svc-v1"

#: Largest request body the gateway will read (bytes).  A submission is
#: a few dozen bytes; anything close to this cap is not a submission.
MAX_BODY_BYTES = 64 * 1024


class WireError(ValueError):
    """A request the gateway refuses; carries the HTTP status to send."""

    def __init__(self, status: int, code: str, detail: str) -> None:
        super().__init__(detail)
        self.status = int(status)
        self.code = str(code)
        self.detail = str(detail)


@dataclass(frozen=True)
class SubmissionRequest:
    """One validated job submission: *count* jobs of one type for one account.

    ``job_type`` is the cluster's job-type index; ``account`` is checked
    against the type's owning account so one organization cannot submit
    (and be billed/rate-limited for) another's work.
    """

    account: int
    job_type: int
    count: int

    def as_dict(self) -> dict:
        return {
            "account": self.account,
            "job_type": self.job_type,
            "count": self.count,
        }


def ok_body(**payload: Any) -> dict:
    """A success envelope under the current schema tag."""
    return {"schema": SERVICE_SCHEMA, **payload}


def error_body(code: str, detail: str, **context: Any) -> dict:
    """An error envelope under the current schema tag."""
    return {"schema": SERVICE_SCHEMA, "error": code, "detail": detail, **context}


def parse_json_body(raw: bytes) -> dict:
    """Decode a request body into a JSON object or raise a 400 WireError."""
    if len(raw) > MAX_BODY_BYTES:
        raise WireError(
            413, "body_too_large", f"body exceeds {MAX_BODY_BYTES} bytes"
        )
    try:
        payload = json.loads(raw.decode("utf-8")) if raw else {}
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise WireError(400, "bad_json", f"body is not valid JSON: {exc}") from None
    if not isinstance(payload, dict):
        raise WireError(400, "bad_json", "body must be a JSON object")
    return payload


def _require_int(payload: Mapping, key: str, minimum: int) -> int:
    value = payload.get(key)
    if isinstance(value, bool) or not isinstance(value, int):
        raise WireError(400, "bad_field", f"{key!r} must be an integer")
    if value < minimum:
        raise WireError(400, "bad_field", f"{key!r} must be >= {minimum}, got {value}")
    return value


def parse_submission(payload: Mapping, cluster) -> SubmissionRequest:
    """Validate a ``POST /v1/jobs`` body against *cluster*'s model bounds.

    Rejections here are permanent client errors (400/422) — unlike the
    retryable 429s of backpressure — so the intake layer never sees a
    submission the model could not absorb:

    * unknown account / job-type indices,
    * a type submitted under the wrong account,
    * ``count`` above the type's per-slot arrival bound ``A_j^max``
      (eq. 3): such a batch could *never* be assigned to a slot.
    """
    account = _require_int(payload, "account", minimum=0)
    job_type = _require_int(payload, "job_type", minimum=0)
    count = _require_int(payload, "count", minimum=1)
    if account >= cluster.num_accounts:
        raise WireError(
            422,
            "unknown_account",
            f"account {account} out of range [0, {cluster.num_accounts})",
        )
    if job_type >= cluster.num_job_types:
        raise WireError(
            422,
            "unknown_job_type",
            f"job_type {job_type} out of range [0, {cluster.num_job_types})",
        )
    jt = cluster.job_types[job_type]
    if jt.account != account:
        raise WireError(
            422,
            "wrong_account",
            f"job_type {job_type} ({jt.name}) belongs to account {jt.account}, "
            f"not {account}",
        )
    max_arrivals = int(jt.max_arrivals)
    if count > max_arrivals:
        raise WireError(
            422,
            "count_exceeds_arrival_bound",
            f"count {count} exceeds the per-slot arrival bound "
            f"A_j^max = {max_arrivals} for {jt.name}; split the batch",
        )
    return SubmissionRequest(account=account, job_type=job_type, count=count)
