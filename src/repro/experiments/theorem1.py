"""Theorem 1 verification: queue bound O(V) and cost gap O(1/V).

For a scenario satisfying the slackness conditions this experiment

* runs GreFar for a range of V and records the largest queue length
  ever observed, checking it against the analytic bound ``V C3 / delta``
  (eq. 23);
* solves the optimal T-step lookahead policy on the same trace and
  checks GreFar's time-average cost against
  ``lookahead + (B + D(T-1)) / V`` (eq. 24).

The analytic constants are worst-case, so the measured values should
sit well inside the bounds; the qualitative trends (max queue grows
with V, cost gap shrinks with V) are asserted by the benchmarks.

To keep the constants meaningful the boundedness parameters are taken
from the *trace* (measured ``a_j^max``) and the cluster's routing and
service bounds; the price cap is the trace maximum.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.analysis.tables import format_table
from repro.core.bounds import TheoremConstants
from repro.core.slackness import check_slackness
from repro.runner import RunSpec, default_cache, run_many
from repro.scenarios import paper_scenario
from repro.schedulers.lookahead import LookaheadPolicy
from repro.simulation.trace import Scenario

__all__ = ["Theorem1Result", "run", "main"]


@dataclass(frozen=True)
class Theorem1Result:
    """Bound checks for a V sweep against the T-step lookahead policy."""

    v_values: tuple
    delta: float
    lookahead: int
    lookahead_cost: float
    grefar_costs: tuple
    cost_bounds: tuple  # lookahead_cost + (B + D(T-1)) / V
    max_queues: tuple
    queue_bounds: tuple  # V * C3 / delta
    queue_bound_holds: bool
    cost_bound_holds: bool


def run(
    horizon: int = 240,
    lookahead: int = 24,
    seed: int = 0,
    v_values: Sequence[float] = (1.0, 2.5, 5.0, 10.0, 20.0),
    scenario: Scenario | None = None,
    jobs: int = 1,
    use_cache: bool = False,
) -> Theorem1Result:
    """Verify both Theorem 1 bounds on one trace."""
    if scenario is None:
        scenario = paper_scenario(horizon=horizon, seed=seed)
    else:
        horizon = scenario.horizon
    if horizon % lookahead != 0:
        raise ValueError(
            f"horizon {horizon} must be a multiple of lookahead {lookahead}"
        )
    cluster = scenario.cluster

    slack = check_slackness(cluster, scenario.arrivals, scenario.availability)
    if not slack.feasible:
        raise RuntimeError(
            "scenario violates the slackness conditions; Theorem 1 does not apply"
        )
    delta = slack.max_delta

    constants = TheoremConstants.from_scenario(
        cluster,
        max_arrivals=scenario.arrivals.max(axis=0),
        price_cap=float(scenario.prices.max()),
        beta=0.0,
    )

    policy = LookaheadPolicy(
        cluster,
        scenario.arrivals,
        scenario.availability,
        scenario.prices,
        lookahead=lookahead,
        beta=0.0,
    )
    lookahead_cost = policy.solve().mean_cost

    queue_bounds = [constants.queue_bound(v, delta) for v in v_values]
    # With REPRO_CONTRACTS=1 each spec's Theorem 1a bound is asserted
    # live at every slot instead of only on the run's final maximum.
    specs = [
        RunSpec(
            scenario=None,
            scheduler="grefar",
            scheduler_kwargs={"v": float(v), "beta": 0.0},
            queue_bound=float(bound) if np.isfinite(bound) else None,
        )
        for v, bound in zip(v_values, queue_bounds)
    ]
    results = run_many(
        specs,
        jobs=jobs,
        cache=default_cache() if use_cache else None,
        scenario=scenario,
    )
    grefar_costs = [r.summary.avg_combined_cost for r in results]
    max_queues = [r.summary.max_queue_length for r in results]
    cost_bounds = [
        lookahead_cost + constants.cost_gap(v, lookahead) for v in v_values
    ]

    queue_ok = all(q <= b + 1e-6 for q, b in zip(max_queues, queue_bounds))
    cost_ok = all(g <= b + 1e-6 for g, b in zip(grefar_costs, cost_bounds))
    return Theorem1Result(
        v_values=tuple(v_values),
        delta=delta,
        lookahead=lookahead,
        lookahead_cost=lookahead_cost,
        grefar_costs=tuple(grefar_costs),
        cost_bounds=tuple(cost_bounds),
        max_queues=tuple(max_queues),
        queue_bounds=tuple(queue_bounds),
        queue_bound_holds=queue_ok,
        cost_bound_holds=cost_ok,
    )


def main(
    horizon: int = 240,
    lookahead: int = 24,
    seed: int = 0,
    jobs: int = 1,
    use_cache: bool = True,
) -> Theorem1Result:
    """Run and print the bound checks per V."""
    result = run(
        horizon=horizon, lookahead=lookahead, seed=seed, jobs=jobs, use_cache=use_cache
    )
    rows = [
        (
            f"V={v:g}",
            result.grefar_costs[i],
            result.cost_bounds[i],
            result.max_queues[i],
            result.queue_bounds[i],
        )
        for i, v in enumerate(result.v_values)
    ]
    print(
        format_table(
            ["", "GreFar cost", "Cost bound (24)", "Max queue", "Queue bound (23)"],
            rows,
            title=(
                f"Theorem 1 checks: T={result.lookahead}-step lookahead cost "
                f"{result.lookahead_cost:.3f}, delta={result.delta:.2f}"
            ),
        )
    )
    print(f"\nqueue bound holds: {result.queue_bound_holds}; "
          f"cost bound holds: {result.cost_bound_holds}")
    return result


if __name__ == "__main__":
    main()
