"""Empirical O(1/V) convergence: fit the cost gap against 1/V.

Theorem 1b says GreFar's time-average cost exceeds the T-step lookahead
optimum by at most ``(B + D(T-1)) / V``.  This experiment measures the
*actual* gap for a geometric ladder of V values and fits
``gap(V) ~ a + b / V`` by least squares: the fit quality and a
near-zero asymptote ``a`` are the empirical signature of the theorem
(much tighter than the worst-case constants).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.analysis.tables import format_table
from repro.runner import RunSpec, default_cache, run_many
from repro.scenarios import paper_scenario
from repro.schedulers.lookahead import LookaheadPolicy
from repro.simulation.trace import Scenario

__all__ = ["ConvergenceResult", "run", "main"]


@dataclass(frozen=True)
class ConvergenceResult:
    """Measured cost gaps and the a + b/V fit."""

    v_values: tuple
    lookahead_cost: float
    grefar_costs: tuple
    gaps: tuple
    fit_asymptote: float  # a
    fit_slope: float  # b
    fit_r_squared: float

    @property
    def gap_monotone_decreasing(self) -> bool:
        """The robust empirical signature: gap(V) falls as V grows.

        The ``a + b/V`` fit is descriptive; at practical V the system is
        often pre-asymptotic (the gap still shrinking roughly linearly
        in log V), so monotonicity — not fit quality — is the check the
        benchmark asserts.  A small per-step tolerance (5%) absorbs the
        low-V noise bump where backpressure's spatial drift briefly
        offsets the still-tiny temporal savings (also visible in the
        paper-shape Fig. 2 sweep at V=2.5), while the endpoints must
        show a strict overall decline.
        """
        steps_ok = all(
            g2 <= g1 * 1.05 + 1e-9 for g1, g2 in zip(self.gaps, self.gaps[1:])
        )
        return steps_ok and self.gaps[-1] < self.gaps[0]


def run(
    horizon: int = 480,
    lookahead: int = 24,
    seed: int = 0,
    v_values: Sequence[float] = (2.0, 4.0, 8.0, 16.0, 32.0, 64.0),
    scenario: Scenario | None = None,
    jobs: int = 1,
    use_cache: bool = False,
) -> ConvergenceResult:
    """Measure gap(V) against the lookahead optimum and fit a + b/V."""
    if scenario is None:
        scenario = paper_scenario(horizon=horizon, seed=seed)
    else:
        horizon = scenario.horizon
    if horizon % lookahead != 0:
        raise ValueError(
            f"horizon {horizon} must be a multiple of lookahead {lookahead}"
        )
    policy = LookaheadPolicy(
        scenario.cluster,
        scenario.arrivals,
        scenario.availability,
        scenario.prices,
        lookahead=lookahead,
    )
    optimum = policy.solve().mean_cost

    specs = [
        RunSpec(
            scenario=None,
            scheduler="grefar",
            scheduler_kwargs={"v": float(v)},
            horizon=horizon,
        )
        for v in v_values
    ]
    results = run_many(
        specs,
        jobs=jobs,
        cache=default_cache() if use_cache else None,
        scenario=scenario,
    )
    costs = [r.summary.avg_energy_cost for r in results]
    gaps = np.array(costs) - optimum

    # Least-squares fit gap = a + b * (1/V).
    inv_v = 1.0 / np.asarray(v_values, dtype=np.float64)
    design = np.column_stack([np.ones_like(inv_v), inv_v])
    (a, b), residuals, _, _ = np.linalg.lstsq(design, gaps, rcond=None)
    predicted = design @ np.array([a, b])
    ss_res = float(np.sum((gaps - predicted) ** 2))
    ss_tot = float(np.sum((gaps - gaps.mean()) ** 2))
    r_squared = 1.0 - ss_res / ss_tot if ss_tot > 1e-12 else 1.0

    return ConvergenceResult(
        v_values=tuple(v_values),
        lookahead_cost=float(optimum),
        grefar_costs=tuple(float(c) for c in costs),
        gaps=tuple(float(g) for g in gaps),
        fit_asymptote=float(a),
        fit_slope=float(b),
        fit_r_squared=float(r_squared),
    )


def main(
    horizon: int = 480,
    seed: int = 0,
    jobs: int = 1,
    use_cache: bool = True,
) -> ConvergenceResult:
    """Run and print the convergence table and fit."""
    result = run(horizon=horizon, seed=seed, jobs=jobs, use_cache=use_cache)
    rows = [
        (f"{v:g}", result.grefar_costs[i], result.gaps[i])
        for i, v in enumerate(result.v_values)
    ]
    print(
        format_table(
            ["V", "GreFar cost", "Gap to lookahead"],
            rows,
            title=(
                f"O(1/V) convergence (lookahead optimum "
                f"{result.lookahead_cost:.3f})"
            ),
        )
    )
    print(
        f"\nfit: gap(V) = {result.fit_asymptote:.3f} + "
        f"{result.fit_slope:.3f}/V   (R^2 = {result.fit_r_squared:.3f})"
    )
    return result


if __name__ == "__main__":
    main()
