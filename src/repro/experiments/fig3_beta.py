"""Fig. 3: impact of the energy-fairness parameter beta (V = 7.5).

Reproduces the three panels comparing beta = 0 against beta = 100:
(a) running-average energy cost, (b) running-average fairness score,
(c) running-average delay in DC #1.

Expected shape (Section VI-B2): with beta = 100 the fairness score is
clearly higher while the energy cost increases only marginally, and the
average delay *decreases* — the quadratic fairness function (eq. 3)
rewards utilization, so GreFar serves some jobs even when prices are
not very low.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.tables import format_table
from repro.runner import RunSpec, ScenarioSpec, default_cache, run_many
from repro.simulation.trace import Scenario

__all__ = ["Fig3Result", "run", "main"]


@dataclass(frozen=True)
class Fig3Result:
    """Per-beta running-average series and final values."""

    v: float
    beta_values: tuple
    energy_series: tuple
    fairness_series: tuple
    delay_dc1_series: tuple
    final_energy: tuple
    final_fairness: tuple
    final_delay_dc1: tuple


def run(
    horizon: int = 2000,
    seed: int = 0,
    v: float = 7.5,
    beta_values: Sequence[float] = (0.0, 100.0),
    scenario: Scenario | None = None,
    jobs: int = 1,
    use_cache: bool = False,
) -> Fig3Result:
    """Run GreFar for each beta on a common scenario."""
    if scenario is None:
        scenario_spec = ScenarioSpec(kind="paper", horizon=horizon, seed=seed)
    else:
        scenario_spec = None
        horizon = scenario.horizon
    specs = [
        RunSpec(
            scenario=scenario_spec,
            scheduler="grefar",
            scheduler_kwargs={"v": float(v), "beta": float(beta)},
            horizon=horizon,
            collect=("energy_series", "fairness_series", "dc_delay_series:0"),
        )
        for beta in beta_values
    ]
    results = run_many(
        specs,
        jobs=jobs,
        cache=default_cache() if use_cache else None,
        scenario=scenario,
    )
    energy = [r.series["energy_series"] for r in results]
    fairness = [r.series["fairness_series"] for r in results]
    delay1 = [r.series["dc_delay_series:0"] for r in results]
    return Fig3Result(
        v=v,
        beta_values=tuple(beta_values),
        energy_series=tuple(energy),
        fairness_series=tuple(fairness),
        delay_dc1_series=tuple(delay1),
        final_energy=tuple(float(s[-1]) for s in energy),
        final_fairness=tuple(float(s[-1]) for s in fairness),
        final_delay_dc1=tuple(float(s[-1]) for s in delay1),
    )


def main(
    horizon: int = 2000,
    seed: int = 0,
    jobs: int = 1,
    use_cache: bool = True,
) -> Fig3Result:
    """Run and print the Fig. 3 endpoint values per beta."""
    result = run(horizon=horizon, seed=seed, jobs=jobs, use_cache=use_cache)
    rows = [
        (
            f"beta={b:g}",
            result.final_energy[i],
            result.final_fairness[i],
            result.final_delay_dc1[i],
        )
        for i, b in enumerate(result.beta_values)
    ]
    print(
        format_table(
            ["", "Energy (a)", "Fairness (b)", "Delay DC#1 (c)"],
            rows,
            precision=4,
            title=f"Fig. 3: GreFar with V={result.v:g} over {horizon} slots",
        )
    )
    return result


if __name__ == "__main__":
    main()
