"""Section VI-B1's in-text result: work distribution across data centers.

"When V = 7.5 and beta = 100, ... the average work per time step
scheduled to data centers #1, #2, and #3 are 33.967, 48.502 and 14.770,
respectively.  In other words, more work is processed in data centers
that incur lower energy costs."

The absolute split depends on the proprietary trace; the claim to
reproduce is the *ordering*: the per-slot work shares are inversely
ordered with the Table I average energy cost per unit work
(DC#2: 0.346 < DC#1: 0.392 < DC#3: 0.572, hence work
DC#2 > DC#1 > DC#3).
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.tables import format_table
from repro.runner import RunSpec, ScenarioSpec, default_cache, run_many
from repro.scenarios import paper_cluster
from repro.simulation.trace import Scenario

__all__ = ["WorkDistributionResult", "PAPER_WORK_SPLIT", "run", "main"]

#: The paper's reported per-DC average work per slot.
PAPER_WORK_SPLIT = (33.967, 48.502, 14.770)


@dataclass(frozen=True)
class WorkDistributionResult:
    """Average per-slot work per data center and cost ordering check."""

    v: float
    beta: float
    avg_work_per_dc: tuple
    cost_per_unit_work: tuple
    ordering_matches_cost: bool


def run(
    horizon: int = 2000,
    seed: int = 0,
    v: float = 7.5,
    beta: float = 100.0,
    scenario: Scenario | None = None,
    jobs: int = 1,
    use_cache: bool = False,
) -> WorkDistributionResult:
    """Measure the average work per slot GreFar sends to each site."""
    if scenario is None:
        scenario_spec = ScenarioSpec(kind="paper", horizon=horizon, seed=seed)
        cluster = paper_cluster()
    else:
        scenario_spec = None
        horizon = scenario.horizon
        cluster = scenario.cluster
    spec = RunSpec(
        scenario=scenario_spec,
        scheduler="grefar",
        scheduler_kwargs={"v": float(v), "beta": float(beta)},
        horizon=horizon,
        collect=("scenario.price_mean",),
    )
    result = run_many(
        [spec],
        jobs=jobs,
        cache=default_cache() if use_cache else None,
        scenario=scenario,
    )[0]
    work = tuple(result.summary.avg_work_per_dc)
    price_means = result.series["scenario.price_mean"]

    costs = []
    for i in range(cluster.num_datacenters):
        server = cluster.server_classes[i]
        avg_price = float(price_means[i])
        costs.append(avg_price * server.energy_per_unit_work)

    # More work should go where energy cost per unit work is lower.
    work_order = tuple(np.argsort(np.argsort([-w for w in work])))
    cost_order = tuple(np.argsort(np.argsort(costs)))
    return WorkDistributionResult(
        v=v,
        beta=beta,
        avg_work_per_dc=work,
        cost_per_unit_work=tuple(costs),
        ordering_matches_cost=work_order == cost_order,
    )


def main(
    horizon: int = 2000,
    seed: int = 0,
    jobs: int = 1,
    use_cache: bool = True,
) -> WorkDistributionResult:
    """Run and print the work distribution next to the paper's."""
    result = run(horizon=horizon, seed=seed, jobs=jobs, use_cache=use_cache)
    rows = [
        (
            f"DC#{i + 1}",
            result.avg_work_per_dc[i],
            result.cost_per_unit_work[i],
            PAPER_WORK_SPLIT[i],
        )
        for i in range(len(result.avg_work_per_dc))
    ]
    print(
        format_table(
            ["", "Avg work/slot", "Cost per unit work", "Paper work/slot"],
            rows,
            title=(
                f"Work distribution (V={result.v:g}, beta={result.beta:g}): "
                "cheaper sites get more work"
            ),
        )
    )
    print(f"\nwork ordering matches inverse cost ordering: {result.ordering_matches_cost}")
    return result


if __name__ == "__main__":
    main()
