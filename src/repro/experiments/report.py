"""One-shot reproduction report: every experiment, one Markdown file.

Runs the full experiment suite (all tables/figures plus the Theorem 1
checks) and writes a self-contained Markdown report next to CSV files
of every plotted series — everything needed to re-draw the paper's
figures with any plotting tool.

Usage::

    python -m repro.experiments.report --out report/ --horizon 800
"""

from __future__ import annotations

import argparse
import csv
from pathlib import Path

import numpy as np

from repro.analysis.tables import format_table
from repro.experiments import (
    fig1_trace,
    fig2_v_sweep,
    fig3_beta,
    fig4_vs_always,
    fig5_snapshot,
    table1,
    theorem1,
    work_distribution,
)

__all__ = ["generate_report", "main"]


def _write_csv(path: Path, headers, columns) -> None:
    rows = zip(*columns)
    with open(path, "w", newline="") as handle:
        writer = csv.writer(handle)
        writer.writerow(headers)
        writer.writerows(rows)


def generate_report(
    output_dir: str | Path,
    horizon: int = 800,
    seed: int = 0,
    jobs: int = 1,
    use_cache: bool = True,
) -> Path:
    """Run every experiment; write ``report.md`` + CSVs; return the path."""
    out = Path(output_dir)
    out.mkdir(parents=True, exist_ok=True)
    sections = []
    fanout = {"jobs": jobs, "use_cache": use_cache}

    # ------------------------------------------------------------- Table I
    t1 = table1.run(horizon=horizon, seed=seed, **fanout)
    sections.append(
        format_table(
            ["DC", "Speed", "Power", "AvgPrice", "Cost/Work"],
            t1.rows(),
            title="## Table I — server configuration and electricity price",
        )
    )

    # ------------------------------------------------------------- Fig. 1
    f1 = fig1_trace.run(horizon=72, seed=seed, **fanout)
    _write_csv(
        out / "fig1_prices.csv",
        ["hour"] + [f"dc{i + 1}" for i in range(f1.prices.shape[1])],
        [np.arange(72)] + [f1.prices[:, i] for i in range(f1.prices.shape[1])],
    )
    _write_csv(
        out / "fig1_org_work.csv",
        ["hour"] + [f"org{m + 1}" for m in range(f1.org_work.shape[1])],
        [np.arange(72)] + [f1.org_work[:, m] for m in range(f1.org_work.shape[1])],
    )
    sections.append(
        "## Fig. 1 — three-day trace\n\n"
        f"price CV per site: {[round(c, 3) for c in f1.price_cv]}; "
        f"org peak/mean: {[round(p, 2) for p in f1.org_peak_to_mean]} "
        "(series in fig1_prices.csv / fig1_org_work.csv)"
    )

    # ------------------------------------------------------------- Fig. 2
    f2 = fig2_v_sweep.run(horizon=horizon, seed=seed, **fanout)
    _write_csv(
        out / "fig2_energy.csv",
        ["slot"] + [f"V={v:g}" for v in f2.v_values],
        [np.arange(horizon)] + list(f2.energy_series),
    )
    _write_csv(
        out / "fig2_delay_dc1.csv",
        ["slot"] + [f"V={v:g}" for v in f2.v_values],
        [np.arange(horizon)] + list(f2.delay_dc1_series),
    )
    _write_csv(
        out / "fig2_delay_dc2.csv",
        ["slot"] + [f"V={v:g}" for v in f2.v_values],
        [np.arange(horizon)] + list(f2.delay_dc2_series),
    )
    sections.append(
        format_table(
            ["V", "Energy", "Delay DC1", "Delay DC2"],
            [
                (f"{v:g}", f2.final_energy[i], f2.final_delay_dc1[i], f2.final_delay_dc2[i])
                for i, v in enumerate(f2.v_values)
            ],
            title="## Fig. 2 — energy/delay versus V (beta = 0)",
        )
    )

    # ------------------------------------------------------------- Fig. 3
    f3 = fig3_beta.run(horizon=horizon, seed=seed, **fanout)
    _write_csv(
        out / "fig3_series.csv",
        ["slot"]
        + [f"energy_b{b:g}" for b in f3.beta_values]
        + [f"fairness_b{b:g}" for b in f3.beta_values],
        [np.arange(horizon)] + list(f3.energy_series) + list(f3.fairness_series),
    )
    sections.append(
        format_table(
            ["beta", "Energy", "Fairness", "Delay DC1"],
            [
                (f"{b:g}", f3.final_energy[i], f3.final_fairness[i], f3.final_delay_dc1[i])
                for i, b in enumerate(f3.beta_values)
            ],
            precision=4,
            title="## Fig. 3 — impact of beta (V = 7.5)",
        )
    )

    # ------------------------------------------------------------- Fig. 4
    f4 = fig4_vs_always.run(horizon=horizon, seed=seed, **fanout)
    sections.append(
        format_table(
            ["", "Energy", "Fairness", "Delay DC1"],
            [
                ("GreFar", f4.grefar_energy[1], f4.grefar_fairness[1], f4.grefar_delay_dc1[1]),
                ("Always", f4.always_energy[1], f4.always_fairness[1], f4.always_delay_dc1[1]),
            ],
            precision=4,
            title=f"## Fig. 4 — GreFar (V={f4.v:g}, beta={f4.beta:g}) vs Always",
        )
    )

    # ------------------------------------------------------------- Fig. 5
    f5 = fig5_snapshot.run(seed=seed, **fanout)
    _write_csv(
        out / "fig5_snapshot.csv",
        ["hour", "price_dc1", "grefar_work", "always_work"],
        [
            np.arange(len(f5.prices_dc1)),
            f5.prices_dc1,
            f5.grefar_work_dc1,
            f5.always_work_dc1,
        ],
    )
    sections.append(
        "## Fig. 5 — one-day snapshot (DC #1)\n\n"
        f"price/work correlation: GreFar {f5.grefar_price_correlation:+.3f}, "
        f"Always {f5.always_price_correlation:+.3f} (series in fig5_snapshot.csv)"
    )

    # -------------------------------------------------- work distribution
    wd = work_distribution.run(horizon=horizon, seed=seed, **fanout)
    sections.append(
        format_table(
            ["DC", "Avg work/slot", "Cost/work"],
            [
                (f"#{i + 1}", wd.avg_work_per_dc[i], wd.cost_per_unit_work[i])
                for i in range(3)
            ],
            title="## Work distribution (V=7.5, beta=100)",
        )
        + f"\n\nordering matches inverse cost: {wd.ordering_matches_cost}"
    )

    # ------------------------------------------------------------ Theorem 1
    th_horizon = (min(horizon, 480) // 24) * 24
    th = theorem1.run(horizon=max(th_horizon, 48), lookahead=24, seed=seed, **fanout)
    sections.append(
        format_table(
            ["V", "GreFar cost", "Cost bound", "Max queue", "Queue bound"],
            [
                (
                    f"{v:g}",
                    th.grefar_costs[i],
                    th.cost_bounds[i],
                    th.max_queues[i],
                    th.queue_bounds[i],
                )
                for i, v in enumerate(th.v_values)
            ],
            title="## Theorem 1 — bound checks",
        )
        + f"\n\nqueue bound holds: {th.queue_bound_holds}; "
        f"cost bound holds: {th.cost_bound_holds}"
    )

    report = out / "report.md"
    header = (
        "# GreFar reproduction report\n\n"
        f"horizon = {horizon} slots, seed = {seed}.  Shape expectations in "
        "EXPERIMENTS.md; raw series in the CSVs alongside this file.\n"
    )
    report.write_text(header + "\n\n".join(sections) + "\n")
    return report


def main(argv=None) -> int:
    """CLI entry point for the report generator."""
    parser = argparse.ArgumentParser(description="Generate the reproduction report")
    parser.add_argument("--out", default="report")
    parser.add_argument("--horizon", type=int, default=800)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--jobs", type=int, default=1, help="worker processes for run fan-out"
    )
    parser.add_argument(
        "--no-cache", action="store_true", help="bypass the on-disk result cache"
    )
    args = parser.parse_args(argv)
    path = generate_report(
        args.out,
        horizon=args.horizon,
        seed=args.seed,
        jobs=args.jobs,
        use_cache=not args.no_cache,
    )
    print(f"wrote {path}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
