"""The (V, beta) tradeoff surface: the paper's "tunable system" claim.

Section I promises "a tunable system with the flexibility to meet
different business requirements": V trades energy for delay, beta
trades energy for fairness.  This experiment maps the whole control
surface — a grid of (V, beta) operating points with energy, fairness
and delay at each — so an operator can pick the point their SLOs allow.

Expected monotone structure (asserted by the benchmark): along the V
axis (beta fixed) energy falls and delay rises; along the beta axis
(V fixed) fairness improves.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

import numpy as np

from repro.analysis.tables import format_table
from repro.runner import RunSpec, ScenarioSpec, default_cache, run_many
from repro.simulation.trace import Scenario

__all__ = ["SurfaceResult", "run", "main"]

DEFAULT_V_GRID = (0.5, 7.5, 30.0)
DEFAULT_BETA_GRID = (0.0, 100.0, 300.0)


@dataclass(frozen=True)
class SurfaceResult:
    """The tradeoff surface: grids plus per-point metric matrices."""

    v_grid: tuple
    beta_grid: tuple
    energy: np.ndarray  # (len(v), len(beta))
    fairness: np.ndarray
    delay: np.ndarray

    def point(self, vi: int, bi: int) -> dict:
        """Metrics at one grid point."""
        return {
            "v": self.v_grid[vi],
            "beta": self.beta_grid[bi],
            "energy": float(self.energy[vi, bi]),
            "fairness": float(self.fairness[vi, bi]),
            "delay": float(self.delay[vi, bi]),
        }


def run(
    horizon: int = 600,
    seed: int = 0,
    v_grid: Sequence[float] = DEFAULT_V_GRID,
    beta_grid: Sequence[float] = DEFAULT_BETA_GRID,
    scenario: Scenario | None = None,
    jobs: int = 1,
    use_cache: bool = False,
) -> SurfaceResult:
    """Evaluate GreFar at every (V, beta) grid point on one scenario."""
    if scenario is None:
        scenario_spec = ScenarioSpec(kind="paper", horizon=horizon, seed=seed)
    else:
        scenario_spec = None
        horizon = scenario.horizon
    points = [(vi, bi) for vi in range(len(v_grid)) for bi in range(len(beta_grid))]
    specs = [
        RunSpec(
            scenario=scenario_spec,
            scheduler="grefar",
            scheduler_kwargs={
                "v": float(v_grid[vi]),
                "beta": float(beta_grid[bi]),
            },
            horizon=horizon,
        )
        for vi, bi in points
    ]
    results = run_many(
        specs,
        jobs=jobs,
        cache=default_cache() if use_cache else None,
        scenario=scenario,
    )
    energy = np.zeros((len(v_grid), len(beta_grid)))
    fairness = np.zeros_like(energy)
    delay = np.zeros_like(energy)
    for (vi, bi), result in zip(points, results):
        summary = result.summary
        energy[vi, bi] = summary.avg_energy_cost
        fairness[vi, bi] = summary.avg_fairness
        delay[vi, bi] = summary.avg_total_delay
    return SurfaceResult(
        v_grid=tuple(v_grid),
        beta_grid=tuple(beta_grid),
        energy=energy,
        fairness=fairness,
        delay=delay,
    )


def main(
    horizon: int = 600,
    seed: int = 0,
    jobs: int = 1,
    use_cache: bool = True,
) -> SurfaceResult:
    """Run and print the control surface."""
    result = run(horizon=horizon, seed=seed, jobs=jobs, use_cache=use_cache)
    rows = []
    for vi, v in enumerate(result.v_grid):
        for bi, beta in enumerate(result.beta_grid):
            p = result.point(vi, bi)
            rows.append(
                (f"{v:g}", f"{beta:g}", p["energy"], p["fairness"], p["delay"])
            )
    print(
        format_table(
            ["V", "beta", "Energy", "Fairness", "Delay"],
            rows,
            precision=4,
            title=f"GreFar (V, beta) tradeoff surface over {horizon} slots",
        )
    )
    return result


if __name__ == "__main__":
    main()
