"""Fig. 4: GreFar versus "Always" (V = 7.5, beta = 100).

Reproduces the three panels comparing GreFar with the baseline that
schedules jobs immediately whenever resources are available: (a)
running-average energy cost, (b) running-average fairness, (c)
running-average delay in DC #1.

Expected shape (Section VI-B3): GreFar achieves lower energy cost and
better fairness than Always at the expense of increased average delay;
Always's average delay is ~1 slot (jobs are scheduled in the slot after
arrival).

Calibration note: the paper runs this comparison at (V=7.5, beta=100)
on its proprietary trace.  Both knobs are scale-dependent — V against
the queue-buildup rate, beta against the total resource R(t) entering
eq. (3)'s gradient — so on the synthetic scenario the equivalent
operating point is (V=15, beta=250), which reproduces all three
orderings (energy, fairness, delay) robustly across seeds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import format_table
from repro.runner import RunSpec, ScenarioSpec, default_cache, run_many
from repro.simulation.trace import Scenario

__all__ = ["Fig4Result", "run", "main"]


@dataclass(frozen=True)
class Fig4Result:
    """Series and final values for GreFar and Always."""

    v: float
    beta: float
    grefar_energy: tuple  # (series, final)
    grefar_fairness: tuple
    grefar_delay_dc1: tuple
    always_energy: tuple
    always_fairness: tuple
    always_delay_dc1: tuple


def _pack(series) -> tuple:
    return (series, float(series[-1]))


def run(
    horizon: int = 2000,
    seed: int = 0,
    v: float = 15.0,
    beta: float = 250.0,
    scenario: Scenario | None = None,
    jobs: int = 1,
    use_cache: bool = False,
) -> Fig4Result:
    """Run both schedulers on a common scenario."""
    if scenario is None:
        scenario_spec = ScenarioSpec(kind="paper", horizon=horizon, seed=seed)
    else:
        scenario_spec = None
        horizon = scenario.horizon
    collect = ("energy_series", "fairness_series", "dc_delay_series:0")
    specs = [
        RunSpec(
            scenario=scenario_spec,
            scheduler="grefar",
            scheduler_kwargs={"v": float(v), "beta": float(beta)},
            horizon=horizon,
            collect=collect,
        ),
        RunSpec(
            scenario=scenario_spec,
            scheduler="always",
            horizon=horizon,
            collect=collect,
        ),
    ]
    grefar, always = run_many(
        specs,
        jobs=jobs,
        cache=default_cache() if use_cache else None,
        scenario=scenario,
    )
    return Fig4Result(
        v=v,
        beta=beta,
        grefar_energy=_pack(grefar.series["energy_series"]),
        grefar_fairness=_pack(grefar.series["fairness_series"]),
        grefar_delay_dc1=_pack(grefar.series["dc_delay_series:0"]),
        always_energy=_pack(always.series["energy_series"]),
        always_fairness=_pack(always.series["fairness_series"]),
        always_delay_dc1=_pack(always.series["dc_delay_series:0"]),
    )


def main(
    horizon: int = 2000,
    seed: int = 0,
    jobs: int = 1,
    use_cache: bool = True,
) -> Fig4Result:
    """Run and print the Fig. 4 endpoint values."""
    result = run(horizon=horizon, seed=seed, jobs=jobs, use_cache=use_cache)
    rows = [
        (
            "GreFar",
            result.grefar_energy[1],
            result.grefar_fairness[1],
            result.grefar_delay_dc1[1],
        ),
        (
            "Always",
            result.always_energy[1],
            result.always_fairness[1],
            result.always_delay_dc1[1],
        ),
    ]
    print(
        format_table(
            ["", "Energy (a)", "Fairness (b)", "Delay DC#1 (c)"],
            rows,
            precision=4,
            title=(
                f"Fig. 4: GreFar (V={result.v:g}, beta={result.beta:g}) vs Always "
                f"over {horizon} slots"
            ),
        )
    )
    return result


if __name__ == "__main__":
    main()
