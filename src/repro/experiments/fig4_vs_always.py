"""Fig. 4: GreFar versus "Always" (V = 7.5, beta = 100).

Reproduces the three panels comparing GreFar with the baseline that
schedules jobs immediately whenever resources are available: (a)
running-average energy cost, (b) running-average fairness, (c)
running-average delay in DC #1.

Expected shape (Section VI-B3): GreFar achieves lower energy cost and
better fairness than Always at the expense of increased average delay;
Always's average delay is ~1 slot (jobs are scheduled in the slot after
arrival).

Calibration note: the paper runs this comparison at (V=7.5, beta=100)
on its proprietary trace.  Both knobs are scale-dependent — V against
the queue-buildup rate, beta against the total resource R(t) entering
eq. (3)'s gradient — so on the synthetic scenario the equivalent
operating point is (V=15, beta=250), which reproduces all three
orderings (energy, fairness, delay) robustly across seeds.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import format_table
from repro.core.grefar import GreFarScheduler
from repro.scenarios import paper_scenario
from repro.schedulers.always import AlwaysScheduler
from repro.simulation.simulator import Simulator
from repro.simulation.trace import Scenario

__all__ = ["Fig4Result", "run", "main"]


@dataclass(frozen=True)
class Fig4Result:
    """Series and final values for GreFar and Always."""

    v: float
    beta: float
    grefar_energy: tuple  # (series, final)
    grefar_fairness: tuple
    grefar_delay_dc1: tuple
    always_energy: tuple
    always_fairness: tuple
    always_delay_dc1: tuple


def _pack(series) -> tuple:
    return (series, float(series[-1]))


def run(
    horizon: int = 2000,
    seed: int = 0,
    v: float = 15.0,
    beta: float = 250.0,
    scenario: Scenario | None = None,
) -> Fig4Result:
    """Run both schedulers on a common scenario."""
    if scenario is None:
        scenario = paper_scenario(horizon=horizon, seed=seed)
    else:
        horizon = scenario.horizon
    grefar = Simulator(
        scenario, GreFarScheduler(scenario.cluster, v=v, beta=beta)
    ).run(horizon)
    always = Simulator(scenario, AlwaysScheduler(scenario.cluster)).run(horizon)
    return Fig4Result(
        v=v,
        beta=beta,
        grefar_energy=_pack(grefar.metrics.avg_energy_series()),
        grefar_fairness=_pack(grefar.metrics.avg_fairness_series()),
        grefar_delay_dc1=_pack(grefar.metrics.avg_dc_delay_series(0)),
        always_energy=_pack(always.metrics.avg_energy_series()),
        always_fairness=_pack(always.metrics.avg_fairness_series()),
        always_delay_dc1=_pack(always.metrics.avg_dc_delay_series(0)),
    )


def main(horizon: int = 2000, seed: int = 0) -> Fig4Result:
    """Run and print the Fig. 4 endpoint values."""
    result = run(horizon=horizon, seed=seed)
    rows = [
        (
            "GreFar",
            result.grefar_energy[1],
            result.grefar_fairness[1],
            result.grefar_delay_dc1[1],
        ),
        (
            "Always",
            result.always_energy[1],
            result.always_fairness[1],
            result.always_delay_dc1[1],
        ),
    ]
    print(
        format_table(
            ["", "Energy (a)", "Fairness (b)", "Delay DC#1 (c)"],
            rows,
            precision=4,
            title=(
                f"Fig. 4: GreFar (V={result.v:g}, beta={result.beta:g}) vs Always "
                f"over {horizon} slots"
            ),
        )
    )
    return result


if __name__ == "__main__":
    main()
