"""Fig. 1: three-day trace of electricity prices and arrived work.

The paper's figure shows (top) hourly electricity prices for the three
data centers over 72 hours and (bottom) the total work of arrived jobs
per organization.  The qualitative features this experiment verifies:

* prices vary hour-to-hour and differ across sites, with the Table I
  ordering of means (DC3 > DC2 > DC1);
* per-organization work is highly time-dependent (diurnal swing) and
  sporadic (organizations have near-silent stretches), i.e. clearly
  non-stationary.
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.tables import format_table
from repro.runner import RunSpec, ScenarioSpec, default_cache, run_many

__all__ = ["Fig1Result", "run", "main"]


@dataclass(frozen=True)
class Fig1Result:
    """The two panels of Fig. 1 plus summary statistics."""

    prices: np.ndarray  # (72, N)
    org_work: np.ndarray  # (72, M)
    price_means: tuple
    price_cv: tuple  # coefficient of variation per site
    org_peak_to_mean: tuple
    org_silent_fraction: tuple  # fraction of hours below 10% of org mean


def run(
    horizon: int = 72,
    seed: int = 0,
    jobs: int = 1,
    use_cache: bool = False,
) -> Fig1Result:
    """Generate the 72-hour trace and compute the shape statistics.

    A scenario-only :class:`~repro.runner.RunSpec`: the runner hands
    back the price panel and the per-organization work panel without
    simulating anything.
    """
    spec = RunSpec(
        scenario=ScenarioSpec(kind="paper", horizon=horizon, seed=seed),
        scheduler=None,
        collect=("scenario.prices", "scenario.org_work"),
    )
    result = run_many(
        [spec], jobs=jobs, cache=default_cache() if use_cache else None
    )[0]
    prices = result.series["scenario.prices"]
    org_work = result.series["scenario.org_work"]

    means = prices.mean(axis=0)
    stds = prices.std(axis=0)
    cv = tuple(float(s / m) for s, m in zip(stds, means))

    peak_to_mean = []
    silent = []
    for m in range(org_work.shape[1]):
        series = org_work[:, m]
        mean = float(series.mean())
        peak_to_mean.append(float(series.max()) / mean if mean > 0 else 0.0)
        silent.append(float(np.mean(series < 0.1 * mean)) if mean > 0 else 1.0)

    return Fig1Result(
        prices=prices,
        org_work=org_work,
        price_means=tuple(float(m) for m in means),
        price_cv=cv,
        org_peak_to_mean=tuple(peak_to_mean),
        org_silent_fraction=tuple(silent),
    )


def main(
    horizon: int = 72,
    seed: int = 0,
    jobs: int = 1,
    use_cache: bool = True,
) -> Fig1Result:
    """Run and print the Fig. 1 shape summary."""
    result = run(horizon=horizon, seed=seed, jobs=jobs, use_cache=use_cache)
    price_rows = [
        (f"DC#{i + 1}", result.price_means[i], result.price_cv[i])
        for i in range(len(result.price_means))
    ]
    print(
        format_table(
            ["Site", "Mean price", "Coeff of variation"],
            price_rows,
            title="Fig. 1 (top): hourly electricity prices",
        )
    )
    org_rows = [
        (
            f"Org#{m + 1}",
            float(result.org_work[:, m].mean()),
            result.org_peak_to_mean[m],
            result.org_silent_fraction[m],
        )
        for m in range(result.org_work.shape[1])
    ]
    print()
    print(
        format_table(
            ["Org", "Mean work/h", "Peak/mean", "Silent frac"],
            org_rows,
            title="Fig. 1 (bottom): arrived work per organization",
        )
    )
    return result


if __name__ == "__main__":
    main()
