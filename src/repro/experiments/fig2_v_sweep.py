"""Fig. 2: minimizing energy cost with different V (beta = 0).

Reproduces the three panels: (a) running-average energy cost, (b)
running-average delay in DC #1 and (c) in DC #2, for the paper's four
cost-delay parameters V in {0.1, 2.5, 7.5, 20} over 2000 hourly slots.

Expected shape (Section VI-B1): a greater V yields lower average energy
cost at the expense of larger queueing delay — the four curves are
ordered monotonically in both panels (energy decreasing in V, delay
increasing in V).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence


from repro.analysis.tables import format_table
from repro.runner import RunSpec, ScenarioSpec, default_cache, run_many
from repro.simulation.trace import Scenario

__all__ = ["Fig2Result", "PAPER_V_VALUES", "run", "main"]

#: The paper's four cost-delay parameters.
PAPER_V_VALUES = (0.1, 2.5, 7.5, 20.0)


@dataclass(frozen=True)
class Fig2Result:
    """Per-V running-average series and final values."""

    v_values: tuple
    energy_series: tuple  # one array per V (panel a)
    delay_dc1_series: tuple  # panel b
    delay_dc2_series: tuple  # panel c
    final_energy: tuple
    final_delay_dc1: tuple
    final_delay_dc2: tuple


def run(
    horizon: int = 2000,
    seed: int = 0,
    v_values: Sequence[float] = PAPER_V_VALUES,
    scenario: Scenario | None = None,
    jobs: int = 1,
    use_cache: bool = False,
) -> Fig2Result:
    """Run the V sweep on a common scenario and collect the Fig. 2 series."""
    if scenario is None:
        scenario_spec = ScenarioSpec(kind="paper", horizon=horizon, seed=seed)
    else:
        scenario_spec = None
        horizon = scenario.horizon
    specs = [
        RunSpec(
            scenario=scenario_spec,
            scheduler="grefar",
            scheduler_kwargs={"v": float(v), "beta": 0.0},
            horizon=horizon,
            collect=("energy_series", "dc_delay_series:0", "dc_delay_series:1"),
        )
        for v in v_values
    ]
    results = run_many(
        specs,
        jobs=jobs,
        cache=default_cache() if use_cache else None,
        scenario=scenario,
    )
    energy = [r.series["energy_series"] for r in results]
    delay1 = [r.series["dc_delay_series:0"] for r in results]
    delay2 = [r.series["dc_delay_series:1"] for r in results]
    return Fig2Result(
        v_values=tuple(v_values),
        energy_series=tuple(energy),
        delay_dc1_series=tuple(delay1),
        delay_dc2_series=tuple(delay2),
        final_energy=tuple(float(s[-1]) for s in energy),
        final_delay_dc1=tuple(float(s[-1]) for s in delay1),
        final_delay_dc2=tuple(float(s[-1]) for s in delay2),
    )


def main(
    horizon: int = 2000,
    seed: int = 0,
    jobs: int = 1,
    use_cache: bool = True,
) -> Fig2Result:
    """Run and print the Fig. 2 endpoint values per V."""
    result = run(horizon=horizon, seed=seed, jobs=jobs, use_cache=use_cache)
    rows = [
        (
            f"V={v:g}",
            result.final_energy[i],
            result.final_delay_dc1[i],
            result.final_delay_dc2[i],
        )
        for i, v in enumerate(result.v_values)
    ]
    print(
        format_table(
            ["", "Avg energy cost (a)", "Delay DC#1 (b)", "Delay DC#2 (c)"],
            rows,
            title=f"Fig. 2: GreFar with beta=0 over {horizon} slots",
        )
    )
    spread = 1.0 - result.final_energy[-1] / result.final_energy[0]
    print(f"\nEnergy saving of V={result.v_values[-1]:g} vs V={result.v_values[0]:g}: "
          f"{spread:.1%}")
    return result


if __name__ == "__main__":
    main()
