"""Table I: server configuration and electricity price per data center.

Reproduces the four columns of Table I — normalized speed, power,
average electricity price and the derived *average energy cost per unit
work* (``price * p_k / s_k``) — for the paper's three data centers.
Speed/power are configuration; the average price is measured from a
generated price trace so the whole pipeline is exercised.

Paper values: speeds 1.00/0.75/1.15, powers 1.00/0.60/1.20, average
prices 0.392/0.433/0.548, energy cost per unit work 0.392/0.346/0.572.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.analysis.tables import format_table
from repro.runner import RunSpec, ScenarioSpec, default_cache, run_many
from repro.scenarios import paper_cluster

__all__ = ["Table1Result", "run", "main"]

#: Table I reference values: (speed, power, avg price, cost per unit work).
PAPER_TABLE1 = (
    (1.00, 1.00, 0.392, 0.392),
    (0.75, 0.60, 0.433, 0.346),
    (1.15, 1.20, 0.548, 0.572),
)


@dataclass(frozen=True)
class Table1Result:
    """Measured Table I rows."""

    speeds: tuple
    powers: tuple
    avg_prices: tuple
    cost_per_unit_work: tuple

    def rows(self) -> list:
        """Rows in the paper's column order (one per data center)."""
        return [
            (
                f"#{i + 1}",
                self.speeds[i],
                self.powers[i],
                self.avg_prices[i],
                self.cost_per_unit_work[i],
            )
            for i in range(len(self.speeds))
        ]


def run(
    horizon: int = 2000,
    seed: int = 0,
    jobs: int = 1,
    use_cache: bool = False,
) -> Table1Result:
    """Generate a price trace and compute the Table I rows.

    A scenario-only :class:`~repro.runner.RunSpec` (no scheduler):
    the runner materializes the trace and returns the per-site mean
    price, which is all the table needs beyond static configuration.
    """
    spec = RunSpec(
        scenario=ScenarioSpec(kind="paper", horizon=horizon, seed=seed),
        scheduler=None,
        collect=("scenario.price_mean",),
    )
    result = run_many(
        [spec], jobs=jobs, cache=default_cache() if use_cache else None
    )[0]
    price_means = result.series["scenario.price_mean"]

    cluster = paper_cluster()
    speeds = []
    powers = []
    prices = []
    costs = []
    for i in range(cluster.num_datacenters):
        # Each paper site houses exactly one server class (class i).
        server = cluster.server_classes[i]
        avg_price = float(price_means[i])
        speeds.append(server.speed)
        powers.append(server.active_power)
        prices.append(avg_price)
        costs.append(avg_price * server.energy_per_unit_work)
    return Table1Result(
        speeds=tuple(speeds),
        powers=tuple(powers),
        avg_prices=tuple(prices),
        cost_per_unit_work=tuple(costs),
    )


def main(
    horizon: int = 2000,
    seed: int = 0,
    jobs: int = 1,
    use_cache: bool = True,
) -> Table1Result:
    """Run and print Table I next to the paper's values."""
    result = run(horizon=horizon, seed=seed, jobs=jobs, use_cache=use_cache)
    rows = []
    for measured, reference in zip(result.rows(), PAPER_TABLE1):
        rows.append((*measured, *reference[2:]))
    print(
        format_table(
            ["DC", "Speed", "Power", "AvgPrice", "Cost/Work", "Paper AvgPrice", "Paper Cost/Work"],
            rows,
            title="Table I: server configuration and electricity price",
        )
    )
    return result


if __name__ == "__main__":
    main()
