"""Fig. 5: one-day schedule snapshot in DC #1 (V = 7.5, beta = 0).

The paper's figure overlays DC #1's hourly electricity price with the
work both schedulers process there during a single day: "Always"
schedules without regard to price, while GreFar concentrates work in
the cheap hours and avoids the expensive ones.

We quantify the visual with the correlation between DC #1's price and
the work GreFar/Always schedule there over the day: GreFar's should be
clearly more negative.  (A warm-up period runs first so the snapshot
shows steady-state behaviour, as the paper's mid-trace day does.)
"""

from __future__ import annotations

from dataclasses import dataclass

import numpy as np

from repro.analysis.tables import format_table
from repro.runner import RunSpec, ScenarioSpec, default_cache, run_many
from repro.simulation.trace import Scenario

__all__ = ["Fig5Result", "run", "main"]


@dataclass(frozen=True)
class Fig5Result:
    """The snapshot series and their price correlations."""

    prices_dc1: np.ndarray  # (window,)
    grefar_work_dc1: np.ndarray
    always_work_dc1: np.ndarray
    grefar_price_correlation: float
    always_price_correlation: float


def _correlation(a: np.ndarray, b: np.ndarray) -> float:
    if np.std(a) < 1e-12 or np.std(b) < 1e-12:
        return 0.0
    return float(np.corrcoef(a, b)[0, 1])


def run(
    warmup: int = 96,
    window: int = 24,
    seed: int = 0,
    v: float = 7.5,
    scenario: Scenario | None = None,
    jobs: int = 1,
    use_cache: bool = False,
) -> Fig5Result:
    """Simulate warmup + window slots; extract the DC #1 day snapshot."""
    horizon = warmup + window
    if scenario is None:
        scenario_spec = ScenarioSpec(kind="paper", horizon=horizon, seed=seed)
    else:
        scenario_spec = None
    specs = [
        RunSpec(
            scenario=scenario_spec,
            scheduler="grefar",
            scheduler_kwargs={"v": float(v), "beta": 0.0},
            horizon=horizon,
            collect=("work_per_dc_series", "scenario.prices"),
        ),
        RunSpec(
            scenario=scenario_spec,
            scheduler="always",
            horizon=horizon,
            collect=("work_per_dc_series",),
        ),
    ]
    grefar, always = run_many(
        specs,
        jobs=jobs,
        cache=default_cache() if use_cache else None,
        scenario=scenario,
    )

    sl = slice(warmup, horizon)
    prices = grefar.series["scenario.prices"][sl, 0]
    g_work = grefar.series["work_per_dc_series"][sl, 0]
    a_work = always.series["work_per_dc_series"][sl, 0]
    return Fig5Result(
        prices_dc1=prices,
        grefar_work_dc1=g_work,
        always_work_dc1=a_work,
        grefar_price_correlation=_correlation(prices, g_work),
        always_price_correlation=_correlation(prices, a_work),
    )


def main(
    warmup: int = 96,
    window: int = 24,
    seed: int = 0,
    jobs: int = 1,
    use_cache: bool = True,
) -> Fig5Result:
    """Run and print the snapshot plus price/work correlations."""
    result = run(
        warmup=warmup, window=window, seed=seed, jobs=jobs, use_cache=use_cache
    )
    rows = [
        (t + 1, result.prices_dc1[t], result.grefar_work_dc1[t], result.always_work_dc1[t])
        for t in range(len(result.prices_dc1))
    ]
    print(
        format_table(
            ["Hour", "Price DC#1", "GreFar work", "Always work"],
            rows,
            title="Fig. 5: one-day schedule snapshot in DC #1 (beta=0, V=7.5)",
        )
    )
    print(
        f"\nprice/work correlation: GreFar {result.grefar_price_correlation:+.3f}, "
        f"Always {result.always_price_correlation:+.3f}"
    )
    return result


if __name__ == "__main__":
    main()
