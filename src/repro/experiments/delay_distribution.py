"""Delay distributions per V: the tails behind Fig. 2's means.

The paper reports *average* delays; an operator signing an SLO cares
about tails.  Theorem 1a's hard O(V) queue bound implies delays have a
bounded tail, and this experiment measures it: p50 / p95 / p99 data
center delay for each V, alongside the mean.

Expected structure: every percentile grows with V (the same tradeoff,
wherever you look on the distribution), and the p99/mean ratio stays
moderate — deferral under GreFar is systematic (price-driven), not a
lottery.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.analysis.tables import format_table
from repro.runner import RunSpec, ScenarioSpec, default_cache, run_many
from repro.simulation.trace import Scenario

__all__ = ["DelayDistributionResult", "run", "main"]


@dataclass(frozen=True)
class DelayDistributionResult:
    """Delay percentiles per cost-delay parameter."""

    v_values: tuple
    mean: tuple
    p50: tuple
    p95: tuple
    p99: tuple
    max_queue: tuple


def run(
    horizon: int = 800,
    seed: int = 0,
    v_values: Sequence[float] = (0.1, 2.5, 7.5, 20.0),
    scenario: Scenario | None = None,
    jobs: int = 1,
    use_cache: bool = False,
) -> DelayDistributionResult:
    """Measure data-center delay percentiles for each V."""
    if scenario is None:
        scenario_spec = ScenarioSpec(kind="paper", horizon=horizon, seed=seed)
    else:
        scenario_spec = None
        horizon = scenario.horizon
    specs = [
        RunSpec(
            scenario=scenario_spec,
            scheduler="grefar",
            scheduler_kwargs={"v": float(v), "beta": 0.0},
            horizon=horizon,
            collect=("delay_percentiles",),
        )
        for v in v_values
    ]
    results = run_many(
        specs,
        jobs=jobs,
        cache=default_cache() if use_cache else None,
        scenario=scenario,
    )
    mean, p50, p95, p99, max_queue = [], [], [], [], []
    for result in results:
        percentiles = result.series["delay_percentiles"]
        mean.append(percentiles["mean"])
        p50.append(percentiles["p50"])
        p95.append(percentiles["p95"])
        p99.append(percentiles["p99"])
        max_queue.append(result.summary.max_queue_length)
    return DelayDistributionResult(
        v_values=tuple(v_values),
        mean=tuple(mean),
        p50=tuple(p50),
        p95=tuple(p95),
        p99=tuple(p99),
        max_queue=tuple(max_queue),
    )


def main(
    horizon: int = 800,
    seed: int = 0,
    jobs: int = 1,
    use_cache: bool = True,
) -> DelayDistributionResult:
    """Run and print the per-V delay distribution table."""
    result = run(horizon=horizon, seed=seed, jobs=jobs, use_cache=use_cache)
    rows = [
        (
            f"V={v:g}",
            result.mean[i],
            result.p50[i],
            result.p95[i],
            result.p99[i],
            result.max_queue[i],
        )
        for i, v in enumerate(result.v_values)
    ]
    print(
        format_table(
            ["", "Mean", "p50", "p95", "p99", "Max queue"],
            rows,
            title=f"DC delay distribution per V over {horizon} slots (beta=0)",
        )
    )
    return result


if __name__ == "__main__":
    main()
