"""Experiment harness: one module per paper table/figure plus Theorem 1.

Each module exposes ``run(...) -> <ResultDataclass>`` (programmatic use)
and ``main(...)`` (prints the paper-style rows).  The benchmark suite in
``benchmarks/`` regenerates every experiment and asserts the expected
shapes from DESIGN.md.
"""

from repro.experiments import (
    convergence,
    delay_distribution,
    fig1_trace,
    fig2_v_sweep,
    fig3_beta,
    fig4_vs_always,
    fig5_snapshot,
    table1,
    theorem1,
    tradeoff_surface,
    work_distribution,
)

__all__ = [
    "convergence",
    "delay_distribution",
    "fig1_trace",
    "fig2_v_sweep",
    "fig3_beta",
    "fig4_vs_always",
    "fig5_snapshot",
    "table1",
    "theorem1",
    "tradeoff_surface",
    "work_distribution",
]
