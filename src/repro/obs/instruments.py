"""Instrumentation helpers: ``timed``/``counted`` decorators and ``span``.

These are the only sanctioned ways for code outside ``repro/obs/`` to
measure wall-clock time (staticcheck rule GF007).  All three helpers
resolve the registry *at call time*, so enabling telemetry mid-process
(``repro profile``, tests) takes effect without re-importing anything,
and all three reduce to a single ``enabled`` attribute check when
telemetry is off.
"""

from __future__ import annotations

import functools
from typing import Any, Callable, Optional, TypeVar, cast

from repro.obs.registry import Registry, metrics_registry

__all__ = ["counted", "span", "timed"]

F = TypeVar("F", bound=Callable[..., Any])


def timed(name: str, registry: Optional[Registry] = None) -> Callable[[F], F]:
    """Decorator accumulating the wrapped callable's wall time.

    Each call adds one ``(calls, seconds)`` sample to the timer *name*
    on the metrics registry (or the explicit *registry* override).
    While the registry is disabled the wrapper short-circuits straight
    into the wrapped function — no clock read.
    """

    def decorate(func: F) -> F:
        @functools.wraps(func)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            reg = registry if registry is not None else metrics_registry()
            if not reg.enabled:
                return func(*args, **kwargs)
            start = reg.clock()
            try:
                return func(*args, **kwargs)
            finally:
                reg.timer_add(name, reg.clock() - start)

        return cast(F, wrapper)

    return decorate


def counted(name: str, registry: Optional[Registry] = None) -> Callable[[F], F]:
    """Decorator incrementing counter *name* once per call."""

    def decorate(func: F) -> F:
        @functools.wraps(func)
        def wrapper(*args: Any, **kwargs: Any) -> Any:
            reg = registry if registry is not None else metrics_registry()
            reg.counter_add(name)
            return func(*args, **kwargs)

        return cast(F, wrapper)

    return decorate


def span(name: str, registry: Optional[Registry] = None) -> Any:
    """An explicit ``with``-block timer on the metrics registry.

    ``with span("sim.decide"): ...`` — nests freely; a parent span's
    total includes its children's (the hot-path table reports inclusive
    time per phase).
    """
    reg = registry if registry is not None else metrics_registry()
    return reg.span(name)
