"""Structured per-slot trace events and the sinks that collect them.

One :class:`SlotTraceEvent` is emitted per simulated slot while the
metrics registry is enabled: what the queues looked like after the
slot's dynamics, which solver backend produced the service decision,
how long the solve took and what it was worth.  Sinks are intentionally
dumb — an in-memory list for tests and the profiler, a JSONL file for
offline analysis — and events round-trip losslessly through both.
"""

from __future__ import annotations

import json
from dataclasses import asdict, dataclass
from pathlib import Path
from typing import IO, Any, Dict, List, Mapping, Optional, Union

__all__ = ["InMemorySink", "JsonlSink", "SlotTraceEvent", "read_trace_jsonl"]


@dataclass(frozen=True)
class SlotTraceEvent:
    """Everything recorded about one simulated slot.

    Parameters
    ----------
    slot:
        The slot index ``t``.
    scheduler:
        The deciding scheduler's display name.
    front_backlog / dc_backlog:
        Total central / summed data-center queue lengths *after* the
        slot's dynamics (jobs).
    solver:
        Service backend that produced the decision (``"greedy"``,
        ``"lp"``, ``"qp"``, ``"projected_gradient"``; empty for
        schedulers that do not solve the slot problem).
    iterations:
        Solver-reported iteration count (0 for closed-form backends).
    objective:
        The slot objective (14) evaluated at the applied service matrix.
    solve_seconds:
        Wall-clock time of the service solve.
    energy_cost:
        Electricity cost ``e(t)`` of the applied action.
    served_jobs:
        Jobs actually completed this slot (ledger-drained).
    cache:
        Runner cache disposition for the enclosing run (``"hit"``,
        ``"miss"`` or empty when not runner-launched).
    """

    slot: int
    scheduler: str
    front_backlog: float
    dc_backlog: float
    solver: str = ""
    iterations: int = 0
    objective: float = 0.0
    solve_seconds: float = 0.0
    energy_cost: float = 0.0
    served_jobs: float = 0.0
    cache: str = ""

    def to_dict(self) -> Dict[str, Any]:
        return asdict(self)

    @classmethod
    def from_dict(cls, payload: Mapping[str, Any]) -> "SlotTraceEvent":
        return cls(
            slot=int(payload["slot"]),
            scheduler=str(payload["scheduler"]),
            front_backlog=float(payload["front_backlog"]),
            dc_backlog=float(payload["dc_backlog"]),
            solver=str(payload.get("solver", "")),
            iterations=int(payload.get("iterations", 0)),
            objective=float(payload.get("objective", 0.0)),
            solve_seconds=float(payload.get("solve_seconds", 0.0)),
            energy_cost=float(payload.get("energy_cost", 0.0)),
            served_jobs=float(payload.get("served_jobs", 0.0)),
            cache=str(payload.get("cache", "")),
        )


class InMemorySink:
    """Collect events in a list (tests, the profiler)."""

    def __init__(self) -> None:
        self.events: List[SlotTraceEvent] = []

    def write(self, event: SlotTraceEvent) -> None:
        self.events.append(event)

    def clear(self) -> None:
        self.events.clear()

    def __len__(self) -> int:
        return len(self.events)


class JsonlSink:
    """Stream events to a JSON-lines file, one event per line.

    Usable as a context manager; :meth:`close` is idempotent and the
    file is opened eagerly so a bad path fails at construction, not
    mid-run.
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._handle: Optional[IO[str]] = self.path.open("w", encoding="utf-8")
        self.count = 0

    def write(self, event: SlotTraceEvent) -> None:
        if self._handle is None:
            raise ValueError(f"JsonlSink({self.path}) is closed")
        self._handle.write(json.dumps(event.to_dict(), sort_keys=True) + "\n")
        self.count += 1

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "JsonlSink":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


def read_trace_jsonl(path: Union[str, Path]) -> List[SlotTraceEvent]:
    """Load every event from a :class:`JsonlSink` file, in write order."""
    events: List[SlotTraceEvent] = []
    with Path(path).open("r", encoding="utf-8") as handle:
        for line in handle:
            line = line.strip()
            if line:
                events.append(SlotTraceEvent.from_dict(json.loads(line)))
    return events
