"""Profiling harness: run one scenario with telemetry on, report hot paths.

``profile_run`` wraps a normal :class:`~repro.simulation.simulator.Simulator`
run: it enables the metrics registry, attaches an in-memory trace sink
(plus an optional JSONL sink), runs the simulation, and freezes
everything the instrumented hot paths recorded into a
:class:`ProfileReport`.  ``render_hot_path_table`` turns the report into
the per-phase table ``repro profile`` prints; the report also feeds the
benchmark-baseline pipeline (:mod:`repro.obs.baseline`).

The registry is reset on entry and restored to its previous
enabled/disabled state on exit, so profiling a scenario from a session
that normally runs with telemetry off leaves no residue.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Any, Dict, Optional, Tuple

from repro.obs.events import InMemorySink, JsonlSink, SlotTraceEvent
from repro.obs.registry import TimerStat, metrics_registry

__all__ = ["ProfileReport", "profile_run", "render_hot_path_table"]


@dataclass(frozen=True)
class ProfileReport:
    """Everything one profiled run recorded."""

    scenario: str
    scheduler: str
    horizon: int
    wall_seconds: float
    timers: Tuple[TimerStat, ...]
    counters: Dict[str, float]
    events: Tuple[SlotTraceEvent, ...]
    summary: Any

    @property
    def slots_per_second(self) -> float:
        if self.wall_seconds <= 0.0:
            return 0.0
        return self.horizon / self.wall_seconds

    def timer(self, name: str) -> TimerStat:
        """The named timer (zero calls if the phase never fired)."""
        for stat in self.timers:
            if stat.name == name:
                return stat
        return TimerStat(name=name, calls=0, total_seconds=0.0)

    def to_dict(self) -> dict:
        """The JSON-ready view the baseline pipeline embeds."""
        payload: dict = {
            "scenario": self.scenario,
            "scheduler": self.scheduler,
            "horizon": self.horizon,
            "wall_seconds": self.wall_seconds,
            "slots_per_second": self.slots_per_second,
            "timers": {
                stat.name: {
                    "calls": stat.calls,
                    "total_seconds": stat.total_seconds,
                }
                for stat in self.timers
            },
            "counters": dict(self.counters),
        }
        if self.summary is not None:
            payload["summary"] = {
                "avg_energy_cost": float(self.summary.avg_energy_cost),
                "avg_total_delay": float(self.summary.avg_total_delay),
            }
        return payload


def profile_run(
    scenario,
    scheduler,
    horizon: Optional[int] = None,
    cost_model=None,
    scenario_name: str = "custom",
    trace_path=None,
) -> ProfileReport:
    """Run *scheduler* on *scenario* with telemetry on; return the report.

    Parameters
    ----------
    horizon:
        Slots to simulate (default: the whole scenario).
    scenario_name:
        Label stored in the report (``repro profile`` passes the CLI
        choice; library callers can pass anything descriptive).
    trace_path:
        If given, every per-slot trace event is also streamed to this
        JSONL file while the run executes.
    """
    # Imported here: repro.simulation sits above the obs layer (the
    # simulator itself imports repro.obs for its instrumentation).
    from repro.simulation.simulator import Simulator

    registry = metrics_registry()
    was_enabled = registry.enabled
    registry.reset()
    sink = InMemorySink()
    registry.add_sink(sink)
    jsonl = None
    if trace_path is not None:
        jsonl = JsonlSink(trace_path)
        registry.add_sink(jsonl)
    registry.enable()
    start = registry.clock()
    try:
        result = Simulator(scenario, scheduler, cost_model=cost_model).run(horizon)
    finally:
        wall_seconds = registry.clock() - start
        registry.enabled = was_enabled
        registry.remove_sink(sink)
        if jsonl is not None:
            registry.remove_sink(jsonl)
            jsonl.close()

    return ProfileReport(
        scenario=scenario_name,
        scheduler=scheduler.name,
        horizon=horizon if horizon is not None else scenario.horizon,
        wall_seconds=wall_seconds,
        timers=tuple(registry.timers()),
        counters=registry.counters(),
        events=tuple(sink.events),
        summary=result.summary,
    )


def render_hot_path_table(report: ProfileReport) -> str:
    """The per-phase hot-path table ``repro profile`` prints.

    One row per timer, slowest total first, with the share of the
    run's wall time each phase accounts for.  Nested spans overlap
    (``sim.slot`` contains ``sim.decide`` contains ``grefar.solve``),
    so the percentage column is a coverage map, not a partition.
    """
    from repro.analysis import format_table

    wall = report.wall_seconds
    rows = []
    for stat in report.timers:
        share = 100.0 * stat.total_seconds / wall if wall > 0.0 else 0.0
        rows.append(
            (
                stat.name,
                stat.calls,
                stat.total_seconds,
                stat.mean_seconds * 1e3,
                share,
            )
        )
    title = (
        f"hot paths — {report.scenario} scenario, {report.horizon} slots, "
        f"{report.scheduler}: {report.wall_seconds:.4f}s wall "
        f"({report.slots_per_second:.0f} slots/s)"
    )
    return format_table(
        ["Phase", "Calls", "Total s", "Mean ms", "% wall"],
        rows,
        precision=4,
        title=title,
    )
