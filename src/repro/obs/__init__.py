"""Observability & telemetry layer: counters, timers, traces, baselines.

Zero-dependency instrumentation for the reproduction's hot paths:

* :mod:`repro.obs.registry` — process-local :class:`Registry` of
  counters/timers/gauges; the hot-path **metrics** registry is a no-op
  unless enabled (``REPRO_OBS=1`` or :func:`enable_metrics`), the
  coarse **stats** registry (runner/cache session counters) is always
  on.
* :mod:`repro.obs.instruments` — ``timed``/``counted`` decorators and
  ``span`` blocks; the only sanctioned wall-clock access outside
  ``repro/obs/`` (staticcheck GF007).
* :mod:`repro.obs.events` — structured per-slot
  :class:`SlotTraceEvent` stream with in-memory and JSONL sinks.
* :mod:`repro.obs.profile` — run one scenario under instrumentation
  and render the hot-path table (``repro profile``).
* :mod:`repro.obs.baseline` — schema-versioned, machine-tagged
  ``BENCH_<date>.json`` emission and validation.

``profile`` and ``baseline`` import the simulation stack, so they are
deliberately *not* imported here: the core instrumented modules
(``model/queues.py``, ``core/grefar.py``, ...) can import
``repro.obs`` without a cycle.

See ``docs/OBSERVABILITY.md`` for the profiling workflow.
"""

from repro.obs.events import InMemorySink, JsonlSink, SlotTraceEvent, read_trace_jsonl
from repro.obs.instruments import counted, span, timed
from repro.obs.registry import (
    Registry,
    TimerStat,
    disable_metrics,
    enable_metrics,
    metrics_enabled,
    metrics_registry,
    stats_registry,
)

__all__ = [
    "InMemorySink",
    "JsonlSink",
    "Registry",
    "SlotTraceEvent",
    "TimerStat",
    "counted",
    "disable_metrics",
    "enable_metrics",
    "metrics_enabled",
    "metrics_registry",
    "read_trace_jsonl",
    "span",
    "stats_registry",
    "timed",
]
