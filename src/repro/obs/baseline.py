"""Benchmark-baseline pipeline: schema-versioned ``BENCH_<date>.json``.

A baseline file freezes what :func:`repro.obs.profile.profile_run`
measured on one machine on one day, so later sessions (and the CI
``obs`` job) can diff performance against a known-good point instead of
a vibe.  The payload is deliberately boring JSON:

* ``schema`` — :data:`BENCH_SCHEMA`; bump it when the shape changes so
  stale baselines fail validation loudly instead of comparing garbage.
* ``generated`` — ISO date stamp of when the numbers were taken.
* ``machine`` — platform tag (wall-clock numbers are meaningless
  without knowing what hardware produced them).
* ``runs`` — one entry per profiled configuration
  (:meth:`ProfileReport.to_dict`).

``python -m repro.obs.baseline --validate BENCH_*.json`` checks files
against the schema and exits non-zero on the first invalid one.

``python -m repro.obs.baseline --compare OLD NEW --tolerance 0.25``
gates slot throughput: for every (scenario, scheduler) pair present in
both files, the run fails when ``NEW.slots_per_second`` drops below
``tolerance * OLD.slots_per_second``.  The CI ``bench`` job uses a
deliberately generous tolerance — shared runners are noisy, and the
gate exists to catch order-of-magnitude hot-path regressions, not
single-digit jitter.
"""

from __future__ import annotations

import json
import platform
from datetime import date
from pathlib import Path
from typing import List, Optional, Sequence

import numpy as np

__all__ = [
    "BENCH_SCHEMA",
    "baseline_payload",
    "compare_baselines",
    "compare_baseline_files",
    "default_baseline_path",
    "machine_tag",
    "validate_baseline",
    "validate_baseline_file",
    "write_baseline",
]

#: Payload-format version; bump when the baseline shape changes.
BENCH_SCHEMA = "repro-bench-v1"

_MACHINE_KEYS = ("system", "release", "machine", "processor", "python", "numpy")
_RUN_REQUIRED = (
    "scenario",
    "scheduler",
    "horizon",
    "wall_seconds",
    "slots_per_second",
    "timers",
    "counters",
)


def machine_tag() -> dict:
    """A stable description of the host the numbers were taken on."""
    return {
        "system": platform.system(),
        "release": platform.release(),
        "machine": platform.machine(),
        "processor": platform.processor(),
        "python": platform.python_version(),
        "numpy": np.__version__,
    }


def baseline_payload(reports: Sequence, generated: Optional[str] = None) -> dict:
    """The full baseline document for *reports* (ProfileReport objects)."""
    if not reports:
        raise ValueError("a baseline needs at least one profiled run")
    return {
        "schema": BENCH_SCHEMA,
        "generated": generated if generated is not None else date.today().isoformat(),
        "machine": machine_tag(),
        "runs": [report.to_dict() for report in reports],
    }


def default_baseline_path(directory: str | Path = ".") -> Path:
    """``<directory>/BENCH_<today>.json``."""
    return Path(directory) / f"BENCH_{date.today().isoformat()}.json"


def write_baseline(
    reports: Sequence,
    path: str | Path | None = None,
    directory: str | Path = ".",
) -> Path:
    """Validate and write a baseline file; return its path."""
    payload = baseline_payload(reports)
    errors = validate_baseline(payload)
    if errors:
        # A write path that can emit an invalid artifact is worse than
        # no pipeline at all; refuse.
        raise ValueError("refusing to write invalid baseline: " + "; ".join(errors))
    target = Path(path) if path is not None else default_baseline_path(directory)
    target.parent.mkdir(parents=True, exist_ok=True)
    target.write_text(
        json.dumps(payload, indent=2, sort_keys=True) + "\n", encoding="utf-8"
    )
    return target


# ----------------------------------------------------------------------
# Validation
# ----------------------------------------------------------------------
def _is_number(value) -> bool:
    return isinstance(value, (int, float)) and not isinstance(value, bool)


def validate_baseline(payload) -> List[str]:
    """Every way *payload* deviates from :data:`BENCH_SCHEMA` (empty = valid)."""
    errors: List[str] = []
    if not isinstance(payload, dict):
        return ["payload is not a JSON object"]
    if payload.get("schema") != BENCH_SCHEMA:
        errors.append(
            f"schema is {payload.get('schema')!r}, expected {BENCH_SCHEMA!r}"
        )
    if not isinstance(payload.get("generated"), str) or not payload.get("generated"):
        errors.append("'generated' must be a non-empty date string")
    machine = payload.get("machine")
    if not isinstance(machine, dict):
        errors.append("'machine' must be an object")
    else:
        for key in _MACHINE_KEYS:
            if not isinstance(machine.get(key), str):
                errors.append(f"machine.{key} must be a string")
    runs = payload.get("runs")
    if not isinstance(runs, list) or not runs:
        errors.append("'runs' must be a non-empty list")
        return errors
    for index, run in enumerate(runs):
        errors.extend(_validate_run(run, f"runs[{index}]"))
    return errors


def _validate_run(run, where: str) -> List[str]:
    errors: List[str] = []
    if not isinstance(run, dict):
        return [f"{where} is not an object"]
    for key in _RUN_REQUIRED:
        if key not in run:
            errors.append(f"{where}.{key} is missing")
    if errors:
        return errors
    if not isinstance(run["scenario"], str) or not isinstance(run["scheduler"], str):
        errors.append(f"{where}: scenario/scheduler must be strings")
    if not isinstance(run["horizon"], int) or run["horizon"] <= 0:
        errors.append(f"{where}.horizon must be a positive integer")
    for key in ("wall_seconds", "slots_per_second"):
        if not _is_number(run[key]) or run[key] < 0:
            errors.append(f"{where}.{key} must be a non-negative number")
    timers = run["timers"]
    if not isinstance(timers, dict):
        errors.append(f"{where}.timers must be an object")
    else:
        for name, stat in timers.items():
            if (
                not isinstance(stat, dict)
                or not isinstance(stat.get("calls"), int)
                or stat["calls"] < 0
                or not _is_number(stat.get("total_seconds"))
                or stat["total_seconds"] < 0
            ):
                errors.append(
                    f"{where}.timers[{name!r}] must have calls (int >= 0) "
                    "and total_seconds (number >= 0)"
                )
    counters = run["counters"]
    if not isinstance(counters, dict) or not all(
        _is_number(value) for value in counters.values()
    ):
        errors.append(f"{where}.counters must map names to numbers")
    return errors


# ----------------------------------------------------------------------
# Throughput comparison (the CI `bench` regression gate)
# ----------------------------------------------------------------------
def compare_baselines(old, new, tolerance: float = 0.25) -> List[str]:
    """Slot-throughput regressions of *new* against *old* (empty = pass).

    Runs are matched on their ``(scenario, scheduler)`` pair.  A pair
    present in *old* but absent from *new* is a failure (the gate lost
    coverage silently otherwise); extra pairs in *new* are fine — they
    become the baseline the day *new* is committed.  *tolerance* is the
    fraction of the old throughput the new run must still reach.
    """
    if not 0.0 < tolerance <= 1.0:
        raise ValueError(f"tolerance must lie in (0, 1], got {tolerance}")
    errors = validate_baseline(old)
    if errors:
        return [f"old baseline invalid: {error}" for error in errors]
    errors = validate_baseline(new)
    if errors:
        return [f"new baseline invalid: {error}" for error in errors]
    new_runs = {
        (run["scenario"], run["scheduler"]): run for run in new["runs"]
    }
    problems: List[str] = []
    for run in old["runs"]:
        key = (run["scenario"], run["scheduler"])
        candidate = new_runs.get(key)
        if candidate is None:
            problems.append(
                f"{key[0]}/{key[1]}: present in the old baseline but missing "
                "from the new one"
            )
            continue
        floor = tolerance * float(run["slots_per_second"])
        got = float(candidate["slots_per_second"])
        if got < floor:
            problems.append(
                f"{key[0]}/{key[1]}: throughput regressed to {got:.1f} "
                f"slots/s, below {floor:.1f} "
                f"({tolerance:g} x old {float(run['slots_per_second']):.1f})"
            )
    return problems


def compare_baseline_files(
    old_path: str | Path, new_path: str | Path, tolerance: float = 0.25
) -> List[str]:
    """File-level :func:`compare_baselines` (read errors reported, not raised)."""
    payloads = []
    for path in (old_path, new_path):
        try:
            payloads.append(json.loads(Path(path).read_text(encoding="utf-8")))
        except OSError as exc:
            return [f"cannot read {path}: {exc}"]
        except ValueError as exc:
            return [f"{path} is not valid JSON: {exc}"]
    return compare_baselines(payloads[0], payloads[1], tolerance=tolerance)


def validate_baseline_file(path: str | Path) -> List[str]:
    """Validation errors for the baseline file at *path* (empty = valid)."""
    try:
        payload = json.loads(Path(path).read_text(encoding="utf-8"))
    except OSError as exc:
        return [f"cannot read {path}: {exc}"]
    except ValueError as exc:
        return [f"{path} is not valid JSON: {exc}"]
    return validate_baseline(payload)


def main(argv: Optional[Sequence[str]] = None) -> int:
    """Validate (``--validate FILES``) or gate (``--compare OLD NEW``)."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.baseline",
        description="validate benchmark-baseline files against the "
        f"{BENCH_SCHEMA} schema, or compare two for throughput regressions",
    )
    mode = parser.add_mutually_exclusive_group(required=True)
    mode.add_argument(
        "--validate",
        action="store_true",
        help="check each file against the baseline schema",
    )
    mode.add_argument(
        "--compare",
        nargs=2,
        metavar=("OLD", "NEW"),
        help="fail when NEW's slot throughput falls below "
        "tolerance * OLD's for any (scenario, scheduler) pair",
    )
    parser.add_argument(
        "--tolerance",
        type=float,
        default=0.25,
        help="fraction of the old throughput the new run must reach "
        "(default 0.25 — catches order-of-magnitude regressions, "
        "tolerates runner noise)",
    )
    parser.add_argument("paths", nargs="*", help="BENCH_*.json files to check")
    args = parser.parse_args(argv)

    if args.compare is not None:
        if args.paths:
            parser.error("--compare takes exactly OLD NEW; drop extra paths")
        old_path, new_path = args.compare
        try:
            problems = compare_baseline_files(
                old_path, new_path, tolerance=args.tolerance
            )
        except ValueError as exc:
            parser.error(str(exc))
        if problems:
            for problem in problems:
                print(f"regression: {problem}")
            return 1
        print(
            f"throughput OK: {new_path} within {args.tolerance:g}x of {old_path}"
        )
        return 0

    if not args.paths:
        parser.error("--validate needs at least one file")
    status = 0
    for path in args.paths:
        errors = validate_baseline_file(path)
        if errors:
            status = 1
            for error in errors:
                print(f"{path}: {error}")
        else:
            print(f"{path}: OK ({BENCH_SCHEMA})")
    return status


if __name__ == "__main__":
    import sys

    sys.exit(main())
