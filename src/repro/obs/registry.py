"""Process-local telemetry registries: counters, timers, gauges, trace sinks.

Two registry instances back the whole observability layer:

* the **metrics registry** (:func:`metrics_registry`) instruments the
  hot paths — solver backends, ``GreFarScheduler`` decisions,
  ``QueueNetwork.step``, the simulator slot loop.  It starts *disabled*
  (unless ``REPRO_OBS=1``) and every mutating method returns
  immediately while disabled, so instrumented code pays one attribute
  read per call site and a run with telemetry off is decision- and
  (within noise) wall-clock-identical to an uninstrumented one.
* the **stats registry** (:func:`stats_registry`) carries the coarse
  session counters the CLI reports after every command — runner
  executions, cache hits/misses/stores, cache size gauges.  These call
  sites fire a handful of times per command, never per slot, so this
  registry is always enabled.

This module is the one place in ``src/repro`` allowed to read the
performance clock directly; everything else goes through
:meth:`Registry.clock`, the :mod:`repro.obs.instruments` helpers or a
:meth:`Registry.span` (enforced by staticcheck rule GF007).
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass
from typing import Any, Dict, List, Optional

__all__ = [
    "Registry",
    "TimerStat",
    "disable_metrics",
    "enable_metrics",
    "metrics_enabled",
    "metrics_registry",
    "stats_registry",
]


def _env_truthy(name: str) -> bool:
    return os.environ.get(name, "").strip() not in ("", "0")


@dataclass(frozen=True)
class TimerStat:
    """Accumulated wall-clock total for one named timer."""

    name: str
    calls: int
    total_seconds: float

    @property
    def mean_seconds(self) -> float:
        return self.total_seconds / self.calls if self.calls else 0.0


class _Span:
    """Context manager timing one block into a registry timer.

    A span created on a disabled registry never reads the clock; the
    enabled check happens at ``__enter__`` so toggling mid-span cannot
    record a partial interval.
    """

    __slots__ = ("_registry", "_name", "_start")

    def __init__(self, registry: "Registry", name: str) -> None:
        self._registry = registry
        self._name = name
        self._start: Optional[float] = None

    def __enter__(self) -> "_Span":
        if self._registry.enabled:
            self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> None:
        if self._start is not None and self._registry.enabled:
            self._registry.timer_add(self._name, time.perf_counter() - self._start)
        self._start = None


class Registry:
    """One process-local bag of counters, timers, gauges and trace sinks.

    Every mutating method (``counter_add``, ``timer_add``, ``gauge_set``,
    ``note_solve``, ``emit``) is a no-op while :attr:`enabled` is False;
    the read side always works so reports can render a disabled
    registry as empty rather than crashing.
    """

    __slots__ = ("name", "enabled", "_counters", "_timers", "_gauges", "_sinks", "_solve")

    def __init__(self, name: str = "metrics", enabled: bool = False) -> None:
        self.name = name
        self.enabled = bool(enabled)
        self._counters: Dict[str, float] = {}
        self._timers: Dict[str, List[float]] = {}
        self._gauges: Dict[str, float] = {}
        self._sinks: List[Any] = []
        self._solve: Dict[str, Any] = {}

    # ------------------------------------------------------------------
    # Lifecycle
    # ------------------------------------------------------------------
    def enable(self) -> "Registry":
        self.enabled = True
        return self

    def disable(self) -> "Registry":
        self.enabled = False
        return self

    def reset(self, prefix: Optional[str] = None) -> None:
        """Zero counters, timers, gauges and the pending solve note.

        With *prefix*, only instruments whose name starts with it are
        cleared (e.g. ``reset("runner.")`` zeros the engine counters
        without touching cache stats).  Sinks are left attached —
        clearing collected *events* is the sink's business
        (:meth:`clear_sinks` detaches them).
        """
        if prefix is None:
            self._counters.clear()
            self._timers.clear()
            self._gauges.clear()
            self._solve.clear()
            return
        for bag in (self._counters, self._timers, self._gauges):
            for key in [name for name in bag if name.startswith(prefix)]:
                del bag[key]

    @staticmethod
    def clock() -> float:
        """The performance clock (seconds, monotonic, arbitrary epoch)."""
        return time.perf_counter()

    # ------------------------------------------------------------------
    # Counters
    # ------------------------------------------------------------------
    def counter_add(self, name: str, value: float = 1.0) -> None:
        if not self.enabled:
            return
        self._counters[name] = self._counters.get(name, 0.0) + value

    def counter(self, name: str) -> float:
        return float(self._counters.get(name, 0.0))

    def counters(self) -> Dict[str, float]:
        return dict(self._counters)

    # ------------------------------------------------------------------
    # Timers
    # ------------------------------------------------------------------
    def timer_add(self, name: str, seconds: float, calls: int = 1) -> None:
        if not self.enabled:
            return
        entry = self._timers.get(name)
        if entry is None:
            self._timers[name] = [float(calls), float(seconds)]
        else:
            entry[0] += calls
            entry[1] += seconds

    def timer(self, name: str) -> TimerStat:
        calls, total = self._timers.get(name, [0.0, 0.0])
        return TimerStat(name=name, calls=int(calls), total_seconds=float(total))

    def timers(self) -> List[TimerStat]:
        """Every timer, slowest total first (ties broken by name)."""
        stats = [self.timer(name) for name in self._timers]
        return sorted(stats, key=lambda s: (-s.total_seconds, s.name))

    def span(self, name: str) -> _Span:
        """A ``with``-block timer; free (no clock read) while disabled."""
        return _Span(self, name)

    # ------------------------------------------------------------------
    # Gauges
    # ------------------------------------------------------------------
    def gauge_set(self, name: str, value: float) -> None:
        if not self.enabled:
            return
        self._gauges[name] = float(value)

    def gauge(self, name: str, default: float = 0.0) -> float:
        return float(self._gauges.get(name, default))

    def gauges(self) -> Dict[str, float]:
        return dict(self._gauges)

    # ------------------------------------------------------------------
    # Per-decision solve notes (solver -> simulator handoff)
    # ------------------------------------------------------------------
    def note_solve(self, **fields: Any) -> None:
        """Merge *fields* into the pending per-decision solve record.

        Solver backends note what only they know (iteration counts);
        the scheduler layers on the chosen backend, objective value and
        solve time; the simulator finally folds the record into that
        slot's trace event via :meth:`consume_solve`.
        """
        if not self.enabled:
            return
        self._solve.update(fields)

    def consume_solve(self) -> Dict[str, Any]:
        """Pop and return the pending solve record (empty if none)."""
        record = dict(self._solve)
        self._solve.clear()
        return record

    # ------------------------------------------------------------------
    # Trace sinks
    # ------------------------------------------------------------------
    def add_sink(self, sink: Any) -> None:
        """Attach a trace sink (any object with ``write(event)``)."""
        self._sinks.append(sink)

    def remove_sink(self, sink: Any) -> None:
        """Detach *sink* if attached (no error otherwise)."""
        try:
            self._sinks.remove(sink)
        except ValueError:
            pass

    def clear_sinks(self) -> None:
        self._sinks.clear()

    @property
    def sinks(self) -> List[Any]:
        return list(self._sinks)

    def emit(self, event: Any) -> None:
        """Deliver *event* to every attached sink (no-op while disabled)."""
        if not self.enabled:
            return
        for sink in self._sinks:
            sink.write(event)

    # ------------------------------------------------------------------
    # Reporting
    # ------------------------------------------------------------------
    def snapshot(self) -> Dict[str, Any]:
        """A plain-dict view of everything recorded (for tests/reports)."""
        return {
            "name": self.name,
            "enabled": self.enabled,
            "counters": self.counters(),
            "timers": {
                stat.name: {"calls": stat.calls, "total_seconds": stat.total_seconds}
                for stat in self.timers()
            },
            "gauges": self.gauges(),
        }


# ----------------------------------------------------------------------
# Process-local instances
# ----------------------------------------------------------------------
_METRICS = Registry("metrics", enabled=_env_truthy("REPRO_OBS"))
_STATS = Registry("stats", enabled=True)


def metrics_registry() -> Registry:
    """The hot-path registry (disabled unless enabled or ``REPRO_OBS=1``)."""
    return _METRICS


def stats_registry() -> Registry:
    """The always-on coarse session-stats registry (runner/cache counters)."""
    return _STATS


def metrics_enabled() -> bool:
    """True when hot-path telemetry is currently recording."""
    return _METRICS.enabled


def enable_metrics() -> Registry:
    """Turn hot-path telemetry on; returns the metrics registry."""
    return _METRICS.enable()


def disable_metrics() -> Registry:
    """Turn hot-path telemetry off; returns the metrics registry."""
    return _METRICS.disable()
