"""The paper's fairness function (eq. 3): negative squared deviation.

.. math::

   f(t) = - \\sum_{m=1}^{M} \\left( \\frac{r_m(t)}{R(t)} - \\gamma_m \\right)^2

The score is at most zero and is maximized (``= 0``) exactly when every
account receives its target share ``r_m(t) = gamma_m R(t)``.  Note the
side-effect discussed in Section VI-B2: an all-idle slot scores
``-sum_m gamma_m^2 < 0``, so with ``beta > 0`` GreFar is rewarded for
*using* resources, which reduces queueing delay.
"""

from __future__ import annotations

import numpy as np

from repro.fairness.base import FairnessFunction

__all__ = ["QuadraticFairness"]


class QuadraticFairness(FairnessFunction):
    """Negative squared deviation from target shares (paper eq. 3)."""

    def score(
        self,
        allocation: np.ndarray,
        total_resource: float,
        shares: np.ndarray,
    ) -> float:
        alloc, total, sh = self._check(allocation, total_resource, shares)
        dev = alloc / total - sh
        return float(-np.sum(dev**2))

    def gradient(
        self,
        allocation: np.ndarray,
        total_resource: float,
        shares: np.ndarray,
    ) -> np.ndarray:
        alloc, total, sh = self._check(allocation, total_resource, shares)
        dev = alloc / total - sh
        return -2.0 * dev / total

    def hessian_diagonal(self, total_resource: float, num_accounts: int) -> np.ndarray:
        """Diagonal of the (constant) Hessian: ``-2 / R(t)^2`` per account.

        Exposed because the quadratic-programming solver exploits the
        closed form of this fairness function.
        """
        if total_resource <= 0:
            raise ValueError(f"total_resource must be positive, got {total_resource}")
        return np.full(num_accounts, -2.0 / total_resource**2)
