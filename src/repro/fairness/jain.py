"""Jain's fairness index, share-weighted.

.. math::

   f(t) = \\frac{\\left(\\sum_m x_m\\right)^2}{M \\sum_m x_m^2},
   \\qquad x_m = \\frac{r_m(t)}{\\gamma_m}

The index lies in ``(0, 1]`` and equals one exactly when allocations
are proportional to the target shares.  The all-zero allocation is
defined to score the worst case ``1/M`` (the limit along equal
allocations would be 1, but an idle system has earned no fairness).

Jain's index is quasi-concave rather than concave, so it is offered
for *measurement* and ablation benchmarks; optimizing through it uses
its (formal) gradient.
"""

from __future__ import annotations

import numpy as np

from repro.fairness.base import FairnessFunction

__all__ = ["JainFairness"]

_EPS = 1e-12


class JainFairness(FairnessFunction):
    """Share-weighted Jain index in ``(0, 1]``."""

    def _weighted(self, alloc: np.ndarray, shares: np.ndarray) -> np.ndarray:
        safe_shares = np.where(shares > _EPS, shares, _EPS)
        return alloc / safe_shares

    def score(
        self,
        allocation: np.ndarray,
        total_resource: float,
        shares: np.ndarray,
    ) -> float:
        alloc, _, sh = self._check(allocation, total_resource, shares)
        x = self._weighted(alloc, sh)
        sum_sq = float(np.sum(x**2))
        if sum_sq <= _EPS:
            return 1.0 / len(x)
        return float(np.sum(x)) ** 2 / (len(x) * sum_sq)

    def gradient(
        self,
        allocation: np.ndarray,
        total_resource: float,
        shares: np.ndarray,
    ) -> np.ndarray:
        alloc, _, sh = self._check(allocation, total_resource, shares)
        safe_shares = np.where(sh > _EPS, sh, _EPS)
        x = self._weighted(alloc, sh)
        m = len(x)
        s1 = float(np.sum(x))
        s2 = float(np.sum(x**2))
        if s2 <= _EPS:
            return np.zeros_like(alloc)
        # d/dx_m of s1^2 / (m s2) = (2 s1 s2 - 2 x_m s1^2) / (m s2^2)
        grad_x = (2.0 * s1 * s2 - 2.0 * x * s1**2) / (m * s2**2)
        return grad_x / safe_shares
