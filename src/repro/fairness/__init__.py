"""Fairness functions (eq. 3 and the alternates allowed by footnote 5)."""

from repro.fairness.alpha_fair import AlphaFairness
from repro.fairness.base import FairnessFunction
from repro.fairness.jain import JainFairness
from repro.fairness.maxmin import MaxMinFairness
from repro.fairness.quadratic import QuadraticFairness

__all__ = [
    "AlphaFairness",
    "FairnessFunction",
    "JainFairness",
    "MaxMinFairness",
    "QuadraticFairness",
]
