"""Alpha-fair utility (the family the paper cites via [12]).

.. math::

   f(t) = \\sum_m \\gamma_m \\, U_\\alpha\\!\\left(\\frac{r_m(t)}{R(t)}\\right),
   \\qquad
   U_\\alpha(x) = \\begin{cases}
       \\log(x + \\epsilon) & \\alpha = 1 \\\\
       \\dfrac{(x + \\epsilon)^{1-\\alpha}}{1 - \\alpha} & \\alpha \\ne 1
   \\end{cases}

``alpha = 0`` reduces to (weighted) throughput, ``alpha = 1`` to
proportional fairness, and ``alpha -> inf`` approaches max-min
fairness.  A small ``epsilon`` keeps the utility finite at zero
allocation so the per-slot optimization stays well-posed.
"""

from __future__ import annotations

import numpy as np

from repro._validation import require_non_negative, require_positive
from repro.fairness.base import FairnessFunction

__all__ = ["AlphaFairness"]


class AlphaFairness(FairnessFunction):
    """The alpha-fair family of concave fairness utilities.

    Parameters
    ----------
    alpha:
        Fairness exponent ``>= 0``.  Larger values weight the worst-off
        account more heavily.
    epsilon:
        Smoothing constant ``> 0`` keeping the score finite at zero.
    """

    def __init__(self, alpha: float = 1.0, epsilon: float = 1e-3) -> None:
        self.alpha = require_non_negative(alpha, "alpha")
        self.epsilon = require_positive(epsilon, "epsilon")

    def _utility(self, x: np.ndarray) -> np.ndarray:
        shifted = x + self.epsilon
        if abs(self.alpha - 1.0) < 1e-12:
            return np.log(shifted)
        return shifted ** (1.0 - self.alpha) / (1.0 - self.alpha)

    def _utility_prime(self, x: np.ndarray) -> np.ndarray:
        shifted = x + self.epsilon
        return shifted ** (-self.alpha)

    def score(
        self,
        allocation: np.ndarray,
        total_resource: float,
        shares: np.ndarray,
    ) -> float:
        alloc, total, sh = self._check(allocation, total_resource, shares)
        return float(np.sum(sh * self._utility(alloc / total)))

    def gradient(
        self,
        allocation: np.ndarray,
        total_resource: float,
        shares: np.ndarray,
    ) -> np.ndarray:
        alloc, total, sh = self._check(allocation, total_resource, shares)
        return sh * self._utility_prime(alloc / total) / total
