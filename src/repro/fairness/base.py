"""Fairness function interface.

The paper scores fairness with the quadratic deviation function of
eq. (3), but footnote 5 notes the analysis applies to other fairness
functions as well.  This module defines the common interface; concrete
functions live in sibling modules.

A fairness function maps the per-account resource allocation vector
``r_m(t)`` (here called *allocation* to avoid clashing with routing
``r_ij``), the total available resource ``R(t)`` and the target shares
``gamma_m`` to a scalar score.  Larger is fairer.  All concrete
implementations are **concave** in the allocation, which keeps the
per-slot GreFar problem (minimizing ``V*(e - beta*f) + queue terms``)
convex.
"""

from __future__ import annotations

from abc import ABC, abstractmethod

import numpy as np

__all__ = ["FairnessFunction"]


class FairnessFunction(ABC):
    """Interface for concave fairness scores over account allocations."""

    @abstractmethod
    def score(
        self,
        allocation: np.ndarray,
        total_resource: float,
        shares: np.ndarray,
    ) -> float:
        """Fairness score ``f(t)`` — larger is fairer.

        Parameters
        ----------
        allocation:
            Length-``M`` vector of resource (work) given to each account
            this slot.
        total_resource:
            ``R(t) = sum_ik n_ik(t) s_k``, the total available resource.
        shares:
            Length-``M`` vector of target shares ``gamma_m``.
        """

    @abstractmethod
    def gradient(
        self,
        allocation: np.ndarray,
        total_resource: float,
        shares: np.ndarray,
    ) -> np.ndarray:
        """(Sub)gradient of :meth:`score` with respect to *allocation*."""

    # ------------------------------------------------------------------
    def ideal_allocation(self, total_resource: float, shares: np.ndarray) -> np.ndarray:
        """The allocation that maximizes the score: ``gamma_m * R(t)``."""
        return np.asarray(shares, dtype=np.float64) * float(total_resource)

    def _check(self, allocation: np.ndarray, total_resource: float, shares: np.ndarray) -> tuple:
        alloc = np.asarray(allocation, dtype=np.float64)
        sh = np.asarray(shares, dtype=np.float64)
        if alloc.shape != sh.shape:
            raise ValueError(
                f"allocation shape {alloc.shape} must match shares shape {sh.shape}"
            )
        if total_resource <= 0:
            raise ValueError(f"total_resource must be positive, got {total_resource}")
        if np.any(alloc < -1e-9):
            raise ValueError("allocation must be non-negative")
        return np.clip(alloc, 0.0, None), float(total_resource), sh
