"""Max-min fairness: the normalized allocation of the worst-off account.

.. math::

   f(t) = \\min_m \\frac{r_m(t)}{\\gamma_m R(t)}

The score is one when every account receives at least its target share
and zero when any account with positive target receives nothing.  It is
concave but non-smooth; :meth:`gradient` returns a subgradient
supported on the (first) minimizing account.
"""

from __future__ import annotations

import numpy as np

from repro.fairness.base import FairnessFunction

__all__ = ["MaxMinFairness"]

_EPS = 1e-12


class MaxMinFairness(FairnessFunction):
    """Concave max-min fairness score (subgradient-friendly)."""

    def _ratios(self, alloc: np.ndarray, total: float, shares: np.ndarray) -> np.ndarray:
        denom = np.where(shares > _EPS, shares * total, np.inf)
        return np.where(np.isfinite(denom), alloc / denom, np.inf)

    def score(
        self,
        allocation: np.ndarray,
        total_resource: float,
        shares: np.ndarray,
    ) -> float:
        alloc, total, sh = self._check(allocation, total_resource, shares)
        ratios = self._ratios(alloc, total, sh)
        finite = ratios[np.isfinite(ratios)]
        if finite.size == 0:
            return 1.0  # no account has a positive target: vacuously fair
        return float(np.min(finite))

    def gradient(
        self,
        allocation: np.ndarray,
        total_resource: float,
        shares: np.ndarray,
    ) -> np.ndarray:
        alloc, total, sh = self._check(allocation, total_resource, shares)
        ratios = self._ratios(alloc, total, sh)
        grad = np.zeros_like(alloc)
        finite_idx = np.flatnonzero(np.isfinite(ratios))
        if finite_idx.size == 0:
            return grad
        worst = finite_idx[int(np.argmin(ratios[finite_idx]))]
        grad[worst] = 1.0 / (sh[worst] * total)
        return grad
