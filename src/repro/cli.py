"""Command-line interface for the GreFar reproduction.

Usage (also available as ``python -m repro.cli``)::

    repro list                                # schedulers & experiments
    repro run --scheduler grefar --v 7.5 --beta 100 --horizon 500
    repro compare --horizon 500               # GreFar vs every baseline
    repro sweep-v --values 0.1,2.5,7.5,20     # the Fig. 2 sweep
    repro experiment fig2 --horizon 2000      # regenerate a paper figure
    repro resilience --dc 1 --start 150 --duration 60   # outage drill
    repro lint src/repro --format json        # project static checker
"""

from __future__ import annotations

import argparse
import sys
from typing import Sequence

from repro.analysis import format_table
from repro.analysis.tradeoff import sweep_v
from repro.core.bounds import TheoremConstants
from repro.core.grefar import GreFarScheduler
from repro.core.slackness import check_slackness
from repro.faults import FaultEvent, FaultInjector, FaultSchedule, ResilienceObserver
from repro.faults.events import FAULT_KINDS
from repro.scenarios import paper_scenario
from repro.schedulers import (
    AlwaysScheduler,
    PriceThresholdScheduler,
    RandomRoutingScheduler,
    RecedingHorizonScheduler,
    RoundRobinScheduler,
    TroughFillingScheduler,
)
from repro.simulation.simulator import Simulator

__all__ = ["main", "build_parser"]

_EXPERIMENTS = {
    "table1": "repro.experiments.table1",
    "fig1": "repro.experiments.fig1_trace",
    "fig2": "repro.experiments.fig2_v_sweep",
    "fig3": "repro.experiments.fig3_beta",
    "fig4": "repro.experiments.fig4_vs_always",
    "fig5": "repro.experiments.fig5_snapshot",
    "work": "repro.experiments.work_distribution",
    "theorem1": "repro.experiments.theorem1",
    "surface": "repro.experiments.tradeoff_surface",
    "convergence": "repro.experiments.convergence",
    "delays": "repro.experiments.delay_distribution",
}

_SCHEDULERS = (
    "grefar",
    "always",
    "threshold",
    "random",
    "roundrobin",
    "trough",
    "mpc",
)


def _build_scheduler(name: str, cluster, args) -> object:
    if name == "grefar":
        return GreFarScheduler(cluster, v=args.v, beta=args.beta)
    if name == "always":
        return AlwaysScheduler(cluster)
    if name == "threshold":
        return PriceThresholdScheduler(cluster, threshold=args.threshold)
    if name == "random":
        return RandomRoutingScheduler(cluster, seed=args.seed)
    if name == "roundrobin":
        return RoundRobinScheduler(cluster)
    if name == "trough":
        return TroughFillingScheduler(cluster)
    if name == "mpc":
        return RecedingHorizonScheduler(cluster)
    raise ValueError(f"unknown scheduler {name!r}")


def _summary_row(summary) -> tuple:
    return (
        summary.scheduler,
        summary.avg_energy_cost,
        summary.avg_fairness,
        summary.avg_total_delay,
        summary.max_queue_length,
    )


_SUMMARY_HEADERS = ["Scheduler", "Avg energy", "Avg fairness", "Avg delay", "Max queue"]


def _cmd_list(args) -> int:
    print("schedulers: " + ", ".join(_SCHEDULERS))
    print("experiments: " + ", ".join(sorted(_EXPERIMENTS)))
    return 0


def _cmd_run(args) -> int:
    scenario = paper_scenario(horizon=args.horizon, seed=args.seed)
    scheduler = _build_scheduler(args.scheduler, scenario.cluster, args)
    result = Simulator(scenario, scheduler).run()
    print(
        format_table(
            _SUMMARY_HEADERS,
            [_summary_row(result.summary)],
            precision=4,
            title=f"{args.horizon}-slot run (seed {args.seed})",
        )
    )
    return 0


def _cmd_compare(args) -> int:
    scenario = paper_scenario(horizon=args.horizon, seed=args.seed)
    cluster = scenario.cluster
    schedulers = [
        GreFarScheduler(cluster, v=args.v, beta=args.beta),
        AlwaysScheduler(cluster),
        TroughFillingScheduler(cluster),
        RoundRobinScheduler(cluster),
    ]
    rows = []
    for scheduler in schedulers:
        result = Simulator(scenario, scheduler).run()
        rows.append(_summary_row(result.summary))
    print(
        format_table(
            _SUMMARY_HEADERS,
            rows,
            precision=4,
            title=f"Scheduler comparison over {args.horizon} slots (seed {args.seed})",
        )
    )
    return 0


def _cmd_sweep_v(args) -> int:
    values = [float(x) for x in args.values.split(",") if x]
    if not values:
        print("error: --values must list at least one V", file=sys.stderr)
        return 2
    scenario = paper_scenario(horizon=args.horizon, seed=args.seed)
    points = sweep_v(scenario, values, beta=args.beta)
    rows = [
        (f"{p.v:g}", p.avg_energy_cost, p.avg_total_delay, p.max_queue_length)
        for p in points
    ]
    print(
        format_table(
            ["V", "Avg energy", "Avg delay", "Max queue"],
            rows,
            title=f"V sweep over {args.horizon} slots (beta={args.beta:g})",
        )
    )
    return 0


def _cmd_resilience(args) -> int:
    """Run a fault drill and report recovery/overshoot per scheduler."""
    scenario = paper_scenario(horizon=args.horizon, seed=args.seed)
    cluster = scenario.cluster
    if args.start + args.duration > args.horizon:
        print("error: fault window must end within the horizon", file=sys.stderr)
        return 2
    try:
        event = FaultEvent(
            args.kind, dc=args.dc, start=args.start, duration=args.duration,
            severity=args.severity,
        )
        schedule = FaultSchedule((event,)).validate_for(cluster, args.horizon)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    # Reference queue bound (eq. 23) from the *unfaulted* trace's slack.
    queue_bound = None
    if args.v > 0:
        slack = check_slackness(cluster, scenario.arrivals, scenario.availability)
        if slack.feasible:
            constants = TheoremConstants.from_scenario(
                cluster, price_cap=float(scenario.prices.max()), beta=args.beta
            )
            queue_bound = constants.queue_bound(args.v, slack.max_delta)

    contenders = [GreFarScheduler(cluster, v=args.v, beta=args.beta)]
    if args.compare:
        contenders += [AlwaysScheduler(cluster), RandomRoutingScheduler(cluster)]
    rows = []
    for scheduler in contenders:
        injector = FaultInjector(cluster, schedule)
        observer = ResilienceObserver(cluster, schedule, queue_bound=queue_bound)
        result = Simulator(
            scenario, scheduler, injector=injector, observers=[observer]
        ).run()
        report = observer.report(scheduler.name)
        impact = report.impacts[0]
        summary = result.summary
        rows.append(
            (
                scheduler.name,
                "yes" if impact.recovered else "NO",
                impact.recovery_slots if impact.recovered else float("nan"),
                impact.overshoot,
                impact.peak_front_queue,
                impact.cost_inflation,
                summary.total_evicted_jobs,
                summary.avg_energy_cost,
            )
        )
    title = (
        f"{event.kind} at dc{event.dc + 1}, slots "
        f"[{event.start}, {event.end}) of {args.horizon} (seed {args.seed})"
    )
    if queue_bound is not None:
        title += f" — queue bound V*C3/delta = {queue_bound:.4g}"
    print(
        format_table(
            [
                "Scheduler",
                "Recovered",
                "Recovery slots",
                "Overshoot",
                "Peak front Q",
                "Cost inflation",
                "Evicted",
                "Avg energy",
            ],
            rows,
            precision=4,
            title=title,
        )
    )
    return 0


def _cmd_lint(args) -> int:
    """Run the project-specific static checker (GF001-GF005)."""
    from repro.tools.staticcheck.cli import run as staticcheck_run
    from repro.tools.staticcheck.reporters import render_rule_listing

    if args.list_rules:
        print(render_rule_listing())
        return 0
    return staticcheck_run(args.paths, fmt=args.format, select=args.select)


def _cmd_experiment(args) -> int:
    module_path = _EXPERIMENTS.get(args.name)
    if module_path is None:
        print(
            f"error: unknown experiment {args.name!r}; choose from "
            f"{sorted(_EXPERIMENTS)}",
            file=sys.stderr,
        )
        return 2
    import importlib

    module = importlib.import_module(module_path)
    defaults = {"theorem1": 240, "fig1": 72, "surface": 600, "convergence": 240, "delays": 800}
    if args.name == "fig5":
        module.main(seed=args.seed)
    else:
        module.main(
            horizon=args.horizon or defaults.get(args.name, 2000), seed=args.seed
        )
    return 0


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GreFar (ICDCS 2012) reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list schedulers and experiments")

    run = sub.add_parser("run", help="run one scheduler on the paper scenario")
    run.add_argument("--scheduler", choices=_SCHEDULERS, default="grefar")
    run.add_argument("--v", type=float, default=7.5, help="cost-delay parameter V")
    run.add_argument("--beta", type=float, default=0.0, help="energy-fairness beta")
    run.add_argument("--threshold", type=float, default=0.4)
    run.add_argument("--horizon", type=int, default=500)
    run.add_argument("--seed", type=int, default=0)

    compare = sub.add_parser("compare", help="GreFar versus the baselines")
    compare.add_argument("--v", type=float, default=7.5)
    compare.add_argument("--beta", type=float, default=100.0)
    compare.add_argument("--horizon", type=int, default=500)
    compare.add_argument("--seed", type=int, default=0)

    sweep = sub.add_parser("sweep-v", help="sweep the cost-delay parameter")
    sweep.add_argument("--values", default="0.1,2.5,7.5,20")
    sweep.add_argument("--beta", type=float, default=0.0)
    sweep.add_argument("--horizon", type=int, default=500)
    sweep.add_argument("--seed", type=int, default=0)

    resilience = sub.add_parser(
        "resilience", help="fault drill: inject a fault, report recovery"
    )
    resilience.add_argument("--kind", choices=FAULT_KINDS, default="outage")
    resilience.add_argument("--dc", type=int, default=1, help="0-based site index")
    resilience.add_argument("--start", type=int, default=150)
    resilience.add_argument("--duration", type=int, default=60)
    resilience.add_argument(
        "--severity", type=float, default=1.0, help="capacity fraction lost"
    )
    resilience.add_argument("--v", type=float, default=7.5)
    resilience.add_argument("--beta", type=float, default=0.0)
    resilience.add_argument("--horizon", type=int, default=400)
    resilience.add_argument("--seed", type=int, default=0)
    resilience.add_argument(
        "--compare",
        action="store_true",
        help="also run the Always and RandomRouting baselines",
    )

    exp = sub.add_parser("experiment", help="regenerate a paper table/figure")
    exp.add_argument("name", help=f"one of {sorted(_EXPERIMENTS)}")
    exp.add_argument("--horizon", type=int, default=None)
    exp.add_argument("--seed", type=int, default=0)

    lint = sub.add_parser(
        "lint", help="project static checker (determinism, queue hygiene, ...)"
    )
    lint.add_argument(
        "paths", nargs="*", default=["src/repro"], help="files/directories to scan"
    )
    lint.add_argument("--format", choices=("text", "json"), default="text")
    lint.add_argument("--select", default=None, help="comma-separated rule ids")
    lint.add_argument("--list-rules", action="store_true")

    return parser


_COMMANDS = {
    "list": _cmd_list,
    "run": _cmd_run,
    "compare": _cmd_compare,
    "sweep-v": _cmd_sweep_v,
    "resilience": _cmd_resilience,
    "experiment": _cmd_experiment,
    "lint": _cmd_lint,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
