"""Command-line interface for the GreFar reproduction.

Usage (also available as ``python -m repro.cli``)::

    repro list                                # schedulers & experiments
    repro run --scheduler grefar --v 7.5 --beta 100 --horizon 500
    repro run --horizon 2000 --checkpoint-every 100     # crash-safe run
    repro run --horizon 2000 --resume                   # finish a killed run
    repro compare --horizon 500 --jobs 4      # GreFar vs every baseline
    repro sweep-v --values 0.1,2.5,7.5,20     # the Fig. 2 sweep
    repro experiment fig2 --horizon 2000      # regenerate a paper figure
    repro resilience --dc 1 --start 150 --duration 60   # outage drill
    repro chaos --fail-rate 0.15 --horizon 300          # solver-fault drill
    repro shard --shards 3 --scenario wide --verify assert   # sharded run
    repro shard --drill kill --drill-slot 40             # worker-kill drill
    repro profile --scenario default --horizon 200      # hot-path table
    repro serve --scenario small --slot-seconds 1       # live gateway
    repro serve --scenario small --resume               # restart after a kill
    repro cache info                          # result-cache statistics
    repro lint src/repro --format json        # project static checker

Long runs are crash-safe: ``--checkpoint-every N`` snapshots the full
simulation state atomically under ``.repro_cache/checkpoints/`` every
N slots, and ``--resume`` continues a killed run from its snapshot
with bit-identical final metrics (``docs/SUPERVISION.md``).  A run
killed by the ``--kill-at`` crash drill exits with code 3.

Every simulation-launching subcommand routes through
:mod:`repro.runner`: ``--jobs N`` fans independent runs across worker
processes (bit-identical to serial) and completed runs are served from
the content-addressed cache under ``.repro_cache/`` unless
``--no-cache`` is given.  A ``runner: N executed, M cached`` line after
the output reports what actually ran.
"""

from __future__ import annotations

import argparse
import sys
from dataclasses import dataclass
from typing import Sequence

from repro.analysis import format_table
from repro.analysis.tradeoff import sweep_v
from repro.core.bounds import TheoremConstants
from repro.core.grefar import GreFarScheduler
from repro.core.slackness import check_slackness
from repro.faults import FaultEvent, FaultInjector, FaultSchedule, ResilienceObserver
from repro.faults.events import FAULT_KINDS
from repro.resilient import SimulationKilled, run_chaos_drill
from repro.runner import (
    CheckpointPolicy,
    ResultCache,
    RunSpec,
    ScenarioSpec,
    default_cache,
    reset_stats,
    run_many,
    runner_stats,
    set_checkpoint_policy,
)
from repro.scenarios import paper_scenario
from repro.schedulers import AlwaysScheduler, RandomRoutingScheduler, scheduler_names
from repro.simulation.simulator import Simulator

__all__ = ["main", "build_parser", "ExperimentInfo", "experiment_info"]


# ----------------------------------------------------------------------
# Experiment registry: name -> module + run metadata.
# ----------------------------------------------------------------------
@dataclass(frozen=True)
class ExperimentInfo:
    """Metadata the CLI needs to launch one experiment module.

    ``default_horizon=None`` marks an experiment whose ``main()`` takes
    no ``horizon`` argument (Fig. 5 is parametrized by warmup/window
    instead); ``--horizon`` is ignored for those.
    """

    name: str
    module: str
    description: str
    default_horizon: int | None = 2000

    def main_kwargs(self, args) -> dict:
        """The ``main()`` keyword arguments for parsed CLI *args*."""
        kwargs = {
            "seed": args.seed,
            "jobs": args.jobs,
            "use_cache": not args.no_cache,
        }
        if self.default_horizon is not None:
            kwargs["horizon"] = args.horizon or self.default_horizon
        return kwargs


_EXPERIMENTS: dict = {
    info.name: info
    for info in (
        ExperimentInfo(
            "table1", "repro.experiments.table1",
            "Table I: configuration and electricity prices",
        ),
        ExperimentInfo(
            "fig1", "repro.experiments.fig1_trace",
            "Fig. 1: price and per-organization work trace",
            default_horizon=72,
        ),
        ExperimentInfo(
            "fig2", "repro.experiments.fig2_v_sweep",
            "Fig. 2: energy/delay versus V (beta = 0)",
        ),
        ExperimentInfo(
            "fig3", "repro.experiments.fig3_beta",
            "Fig. 3: impact of beta (V = 7.5)",
        ),
        ExperimentInfo(
            "fig4", "repro.experiments.fig4_vs_always",
            "Fig. 4: GreFar versus the Always baseline",
        ),
        ExperimentInfo(
            "fig5", "repro.experiments.fig5_snapshot",
            "Fig. 5: one-day schedule snapshot in DC #1",
            default_horizon=None,
        ),
        ExperimentInfo(
            "work", "repro.experiments.work_distribution",
            "work distribution across data centers",
        ),
        ExperimentInfo(
            "theorem1", "repro.experiments.theorem1",
            "Theorem 1: queue bound and cost-gap checks",
            default_horizon=240,
        ),
        ExperimentInfo(
            "surface", "repro.experiments.tradeoff_surface",
            "(V, beta) tradeoff surface",
            default_horizon=600,
        ),
        ExperimentInfo(
            "convergence", "repro.experiments.convergence",
            "empirical O(1/V) convergence fit",
            default_horizon=240,
        ),
        ExperimentInfo(
            "delays", "repro.experiments.delay_distribution",
            "delay percentiles per V",
            default_horizon=800,
        ),
    )
}


def experiment_info(name: str) -> ExperimentInfo:
    """The registry row for *name* (raises ``ValueError`` if unknown)."""
    try:
        return _EXPERIMENTS[name]
    except KeyError:
        raise ValueError(
            f"unknown experiment {name!r}; choose from {sorted(_EXPERIMENTS)}"
        ) from None


#: CLI flags forwarded as scheduler kwargs when the registry entry
#: accepts the parameter (``repro run --scheduler threshold --threshold ...``).
_RUN_PARAM_FLAGS = ("v", "beta", "threshold", "seed")


def _scheduler_kwargs_from_args(name: str, args) -> dict:
    from repro.schedulers import scheduler_entry

    entry = scheduler_entry(name)
    return {
        param: getattr(args, param)
        for param in _RUN_PARAM_FLAGS
        if param in entry.params
    }


def _cache_for(args) -> ResultCache | None:
    return None if args.no_cache else default_cache()


def _install_checkpoint_policy(args) -> None:
    """Install the process-wide checkpoint policy from the CLI flags."""
    every = getattr(args, "checkpoint_every", None)
    resume = bool(getattr(args, "resume", False))
    kill_at = getattr(args, "kill_at", None)
    if every is None and not resume and kill_at is None:
        set_checkpoint_policy(None)
        return
    set_checkpoint_policy(
        CheckpointPolicy(every=every, resume=resume, kill_at=kill_at)
    )


def _print_runner_stats() -> None:
    print(runner_stats().render())


def _summary_row(summary) -> tuple:
    return (
        summary.scheduler,
        summary.avg_energy_cost,
        summary.avg_fairness,
        summary.avg_total_delay,
        summary.max_queue_length,
    )


_SUMMARY_HEADERS = ["Scheduler", "Avg energy", "Avg fairness", "Avg delay", "Max queue"]


def _cmd_list(args) -> int:
    print("schedulers: " + ", ".join(scheduler_names()))
    print("experiments: " + ", ".join(sorted(_EXPERIMENTS)))
    return 0


def _cmd_run(args) -> int:
    reset_stats()
    try:
        _install_checkpoint_policy(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    spec = RunSpec(
        scenario=ScenarioSpec(kind="paper", horizon=args.horizon, seed=args.seed),
        scheduler=args.scheduler,
        scheduler_kwargs=_scheduler_kwargs_from_args(args.scheduler, args),
    )
    try:
        result = run_many([spec], jobs=args.jobs, cache=_cache_for(args))[0]
    except SimulationKilled as exc:
        print(f"{exc}", file=sys.stderr)
        print("resume with the same command plus --resume", file=sys.stderr)
        return 3
    finally:
        set_checkpoint_policy(None)
    if args.json:
        import json

        print(json.dumps(result.summary.as_dict(), sort_keys=True))
        return 0
    print(
        format_table(
            _SUMMARY_HEADERS,
            [_summary_row(result.summary)],
            precision=4,
            title=f"{args.horizon}-slot run (seed {args.seed})",
        )
    )
    _print_runner_stats()
    return 0


def _cmd_compare(args) -> int:
    reset_stats()
    scenario_spec = ScenarioSpec(kind="paper", horizon=args.horizon, seed=args.seed)
    contenders = [
        ("grefar", {"v": args.v, "beta": args.beta}),
        ("always", {}),
        ("trough", {}),
        ("roundrobin", {}),
    ]
    specs = [
        RunSpec(scenario=scenario_spec, scheduler=name, scheduler_kwargs=kwargs)
        for name, kwargs in contenders
    ]
    results = run_many(specs, jobs=args.jobs, cache=_cache_for(args))
    rows = [_summary_row(result.summary) for result in results]
    print(
        format_table(
            _SUMMARY_HEADERS,
            rows,
            precision=4,
            title=f"Scheduler comparison over {args.horizon} slots (seed {args.seed})",
        )
    )
    _print_runner_stats()
    return 0


def _cmd_sweep_v(args) -> int:
    values = [float(x) for x in args.values.split(",") if x]
    if not values:
        print("error: --values must list at least one V", file=sys.stderr)
        return 2
    reset_stats()
    scenario = paper_scenario(horizon=args.horizon, seed=args.seed)
    points = sweep_v(
        scenario,
        values,
        beta=args.beta,
        jobs=args.jobs,
        use_cache=not args.no_cache,
    )
    rows = [
        (f"{p.v:g}", p.avg_energy_cost, p.avg_total_delay, p.max_queue_length)
        for p in points
    ]
    print(
        format_table(
            ["V", "Avg energy", "Avg delay", "Max queue"],
            rows,
            title=f"V sweep over {args.horizon} slots (beta={args.beta:g})",
        )
    )
    _print_runner_stats()
    return 0


def _cmd_resilience(args) -> int:
    """Run a fault drill and report recovery/overshoot per scheduler."""
    scenario = paper_scenario(horizon=args.horizon, seed=args.seed)
    cluster = scenario.cluster
    if args.start + args.duration > args.horizon:
        print("error: fault window must end within the horizon", file=sys.stderr)
        return 2
    try:
        event = FaultEvent(
            args.kind, dc=args.dc, start=args.start, duration=args.duration,
            severity=args.severity,
        )
        schedule = FaultSchedule((event,)).validate_for(cluster, args.horizon)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    # Reference queue bound (eq. 23) from the *unfaulted* trace's slack.
    queue_bound = None
    if args.v > 0:
        slack = check_slackness(cluster, scenario.arrivals, scenario.availability)
        if slack.feasible:
            constants = TheoremConstants.from_scenario(
                cluster, price_cap=float(scenario.prices.max()), beta=args.beta
            )
            queue_bound = constants.queue_bound(args.v, slack.max_delta)

    contenders = [GreFarScheduler(cluster, v=args.v, beta=args.beta)]
    if args.compare:
        contenders += [AlwaysScheduler(cluster), RandomRoutingScheduler(cluster)]
    rows = []
    for scheduler in contenders:
        injector = FaultInjector(cluster, schedule)
        observer = ResilienceObserver(cluster, schedule, queue_bound=queue_bound)
        result = Simulator(
            scenario, scheduler, injector=injector, observers=[observer]
        ).run()
        report = observer.report(scheduler.name)
        impact = report.impacts[0]
        summary = result.summary
        rows.append(
            (
                scheduler.name,
                "yes" if impact.recovered else "NO",
                impact.recovery_slots if impact.recovered else float("nan"),
                impact.overshoot,
                impact.peak_front_queue,
                impact.cost_inflation,
                summary.total_evicted_jobs,
                summary.avg_energy_cost,
            )
        )
    title = (
        f"{event.kind} at dc{event.dc + 1}, slots "
        f"[{event.start}, {event.end}) of {args.horizon} (seed {args.seed})"
    )
    if queue_bound is not None:
        title += f" — queue bound V*C3/delta = {queue_bound:.4g}"
    print(
        format_table(
            [
                "Scheduler",
                "Recovered",
                "Recovery slots",
                "Overshoot",
                "Peak front Q",
                "Cost inflation",
                "Evicted",
                "Avg energy",
            ],
            rows,
            precision=4,
            title=title,
        )
    )
    return 0


def _cmd_chaos(args) -> int:
    """Solver-fault drill: flaky primary backend, supervised recovery.

    Wraps the scheduler's primary backend in a deterministic
    :class:`~repro.resilient.FlakyBackend` and runs with per-slot action
    validation on.  Exit 0 means the run completed, every slot's action
    was feasible, and (when faults were actually injected) at least one
    fallback was recorded — the CI ``chaos`` job's acceptance bar.
    """
    from repro.scenarios import small_scenario

    if not 0.0 <= args.fail_rate <= 1.0:
        print(
            f"error: --fail-rate must lie in [0, 1], got {args.fail_rate}",
            file=sys.stderr,
        )
        return 2
    if args.scenario == "small":
        scenario = small_scenario(horizon=args.horizon, seed=args.seed)
    else:
        scenario = paper_scenario(horizon=args.horizon, seed=args.seed)
    scheduler = GreFarScheduler(scenario.cluster, v=args.v, beta=args.beta)
    try:
        report = run_chaos_drill(
            scenario,
            scheduler,
            failure_rate=args.fail_rate,
            seed=args.seed,
            mode=args.mode,
        )
    except Exception as exc:  # noqa: BLE001 - a crashed drill IS the failure
        print(f"chaos drill CRASHED: {type(exc).__name__}: {exc}", file=sys.stderr)
        return 1
    print(report.render())
    if args.fail_rate > 0 and report.injected_failures == 0:
        print("error: no faults were injected (horizon too short?)", file=sys.stderr)
        return 1
    if report.injected_failures > 0 and report.fallbacks == 0:
        print("error: faults injected but no fallback recorded", file=sys.stderr)
        return 1
    print(
        f"OK: {report.slots} slots, every action feasible, "
        f"{report.fallbacks} fallback solve(s)"
    )
    return 0


def _shard_scenario(args):
    from repro.scenarios import small_scenario, wide_scenario

    if args.scenario == "small":
        return small_scenario(horizon=args.horizon, seed=args.seed)
    if args.scenario == "wide":
        return wide_scenario(
            horizon=args.horizon, seed=args.seed, num_datacenters=args.dcs
        )
    return paper_scenario(horizon=args.horizon, seed=args.seed)


def _cmd_shard(args) -> int:
    """Sharded scatter-gather run, or a worker-fault drill (--drill).

    Without ``--drill``: runs the scenario on a
    :class:`~repro.distrib.ShardController` (``docs/DISTRIBUTED.md``),
    optionally verifying against the serial solve every slot, with the
    same crash-safety flags as ``repro run`` (``--checkpoint-every`` /
    ``--kill-at`` / ``--resume``; a killed run exits 3).  With
    ``--drill kill|hang|straggle|slow-start``: injects one process
    fault into a shard worker mid-run and exits non-zero unless the run
    survives — completes every slot with a recorded incident.
    """
    from repro.distrib import (
        ShardController,
        ShardDivergenceError,
        ShardPolicy,
        run_shard_drill,
    )
    from repro.resilient import Checkpointer

    verify = None if args.verify == "none" else args.verify
    try:
        policy = ShardPolicy(
            deadline=args.deadline,
            spawn_timeout=args.deadline,
            retries=args.retries,
            max_respawns=args.max_respawns,
            fallback=args.fallback,
            checkpoint_every=args.checkpoint_every,
        )
        scenario = _shard_scenario(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    if args.drill is not None:
        try:
            report = run_shard_drill(
                scenario,
                num_shards=args.shards,
                v=args.v,
                beta=args.beta,
                kind=args.drill,
                shard=args.drill_shard,
                slot=args.drill_slot,
                policy=policy if args.deadline is not None else None,
                verify=verify,
            )
        except ValueError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
        print(report.render())
        if not report.survived:
            print("error: shard drill did not survive", file=sys.stderr)
            return 1
        return 0

    controller = ShardController(
        scenario.cluster,
        num_shards=args.shards,
        v=args.v,
        beta=args.beta,
        policy=policy,
        verify=verify,
    )
    checkpointer = None
    if args.checkpoint_every is not None or args.resume or args.kill_at is not None:
        key = (
            f"shard-{args.scenario}-d{args.dcs}-s{args.shards}"
            f"-h{args.horizon}-r{args.seed}-v{args.v:g}-b{args.beta:g}"
        )
        checkpointer = Checkpointer(
            key, every=args.checkpoint_every, kill_at=args.kill_at
        )
    try:
        result = Simulator(scenario, controller, validate=True).run(
            args.horizon, checkpointer=checkpointer, resume=args.resume
        )
    except SimulationKilled as exc:
        print(f"{exc}", file=sys.stderr)
        print("resume with the same command plus --resume", file=sys.stderr)
        return 3
    except ShardDivergenceError as exc:
        print(f"error: sharded solve diverged from serial: {exc}", file=sys.stderr)
        return 1
    finally:
        controller.shutdown()
    if args.json:
        import json

        print(json.dumps(result.summary.as_dict(), sort_keys=True))
        return 0
    print(
        format_table(
            _SUMMARY_HEADERS,
            [_summary_row(result.summary)],
            precision=4,
            title=f"{args.horizon}-slot sharded run "
            f"({controller.num_shards} shards, seed {args.seed})",
        )
    )
    print(
        f"shards: {controller.slots_completed} slots, "
        f"{controller.incident_count} incident(s), "
        f"{controller.fallback_slots} fallback slot(s)"
    )
    if verify is not None and controller.divergence:
        worst = max(gap for _, gap, _ in controller.divergence)
        print(f"verify: max objective gap {worst:.3g} over serial")
    return 0


def _cmd_cache(args) -> int:
    """Inspect or clear the on-disk result cache."""
    cache = default_cache()
    if cache is None:
        print("cache disabled (REPRO_NO_CACHE is set)")
        return 0
    if args.action == "info":
        info = cache.info()
        session = info["session"]
        print(
            f"cache at {info['root']} (schema {info['schema']}): "
            f"{info['entries']} entries, {info['bytes']} bytes"
        )
        print(
            f"session: {session['hits']} hits, {session['misses']} misses, "
            f"{session['stores']} stores"
        )
        return 0
    removed = cache.clear()
    print(f"removed {removed} cache entries from {cache.root}")
    return 0


def _cmd_lint(args) -> int:
    """Run the project-specific static checker (GF001-GF013)."""
    from repro.tools.staticcheck.cli import run as staticcheck_run
    from repro.tools.staticcheck.reporters import render_rule_listing

    if args.list_rules:
        print(render_rule_listing())
        return 0
    return staticcheck_run(
        args.paths,
        fmt=args.format,
        select=args.select,
        baseline=args.baseline,
        write_baseline_path=args.write_baseline,
    )


def _cmd_profile(args) -> int:
    """Profile one run with telemetry on; optionally emit a baseline."""
    from repro.obs.baseline import write_baseline
    from repro.obs.profile import profile_run, render_hot_path_table
    from repro.scenarios import small_scenario
    from repro.schedulers import build_scheduler

    if args.scenario == "small":
        scenario = small_scenario(horizon=args.horizon, seed=args.seed)
    else:
        # "default" is the paper scenario — the configuration every
        # other subcommand runs.
        scenario = paper_scenario(horizon=args.horizon, seed=args.seed)
    scheduler = build_scheduler(
        args.scheduler,
        scenario.cluster,
        **_scheduler_kwargs_from_args(args.scheduler, args),
    )
    report = profile_run(
        scenario,
        scheduler,
        scenario_name=args.scenario,
        trace_path=args.trace,
    )
    print(render_hot_path_table(report))
    if args.trace:
        print(f"trace: {len(report.events)} slot events -> {args.trace}")
    if not args.no_baseline:
        path = write_baseline([report], path=args.output)
        print(f"baseline: {path}")
    return 0


def _cmd_serve(args) -> int:
    """Run the scheduler-as-a-service gateway (docs/SERVICE.md).

    Accepts streaming job submissions over REST/JSON with backpressure
    and per-account rate limits, ticks GreFar on a wall-clock slot
    schedule (or manual ``POST /v1/admin/tick`` when ``--slot-seconds``
    is omitted), checkpoints every completed slot batch, and with
    ``--resume`` restarts from the last ckpt-v1 snapshot without losing
    any acknowledged submission.
    """
    from repro.service import ServiceConfig, serve

    try:
        config = ServiceConfig(
            scenario_kind=args.scenario,
            scenario_seed=args.seed,
            capacity_slots=args.capacity_slots,
            scheduler=args.scheduler,
            scheduler_kwargs=_scheduler_kwargs_from_args(args.scheduler, args),
            cost_beta=args.cost_beta,
            intake_capacity=args.intake_capacity,
            rate=args.rate,
            burst=args.burst,
            slot_seconds=args.slot_seconds,
            checkpoint_every=args.checkpoint_every,
            data_dir=args.data_dir,
        )
    except (TypeError, ValueError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    return serve(config, host=args.host, port=args.port, resume=args.resume)


def _cmd_experiment(args) -> int:
    try:
        info = experiment_info(args.name)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    import importlib

    module = importlib.import_module(info.module)
    reset_stats()
    try:
        _install_checkpoint_policy(args)
    except ValueError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2
    try:
        module.main(**info.main_kwargs(args))
    except SimulationKilled as exc:
        print(f"{exc}", file=sys.stderr)
        print("resume with the same command plus --resume", file=sys.stderr)
        return 3
    finally:
        set_checkpoint_policy(None)
    _print_runner_stats()
    return 0


def _add_runner_flags(command) -> None:
    """The shared fan-out/caching surface of runner-routed subcommands."""
    command.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for independent runs (results are "
        "bit-identical to --jobs 1)",
    )
    command.add_argument(
        "--no-cache",
        action="store_true",
        help="bypass the on-disk result cache (.repro_cache/)",
    )


def _add_checkpoint_flags(command) -> None:
    """Crash-safety flags shared by ``repro run`` and ``repro experiment``."""
    command.add_argument(
        "--checkpoint-every",
        type=int,
        default=None,
        metavar="N",
        help="snapshot the run state every N slots "
        "(.repro_cache/checkpoints/; removed on completion)",
    )
    command.add_argument(
        "--resume",
        action="store_true",
        help="resume from an existing checkpoint (bit-identical to an "
        "uninterrupted run; falls back to a fresh run if none)",
    )
    command.add_argument(
        "--kill-at",
        type=int,
        default=None,
        metavar="SLOT",
        help="crash drill: checkpoint and kill the run after SLOT slots "
        "(exit code 3)",
    )


def build_parser() -> argparse.ArgumentParser:
    """Build the CLI argument parser."""
    parser = argparse.ArgumentParser(
        prog="repro",
        description="GreFar (ICDCS 2012) reproduction CLI",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("list", help="list schedulers and experiments")

    run = sub.add_parser("run", help="run one scheduler on the paper scenario")
    run.add_argument("--scheduler", choices=scheduler_names(), default="grefar")
    run.add_argument("--v", type=float, default=7.5, help="cost-delay parameter V")
    run.add_argument("--beta", type=float, default=0.0, help="energy-fairness beta")
    run.add_argument("--threshold", type=float, default=0.4)
    run.add_argument("--horizon", type=int, default=500)
    run.add_argument("--seed", type=int, default=0)
    run.add_argument(
        "--json",
        action="store_true",
        help="print the summary as one JSON line (machine-comparable)",
    )
    _add_runner_flags(run)
    _add_checkpoint_flags(run)

    compare = sub.add_parser("compare", help="GreFar versus the baselines")
    compare.add_argument("--v", type=float, default=7.5)
    compare.add_argument("--beta", type=float, default=100.0)
    compare.add_argument("--horizon", type=int, default=500)
    compare.add_argument("--seed", type=int, default=0)
    _add_runner_flags(compare)

    sweep = sub.add_parser("sweep-v", help="sweep the cost-delay parameter")
    sweep.add_argument("--values", default="0.1,2.5,7.5,20")
    sweep.add_argument("--beta", type=float, default=0.0)
    sweep.add_argument("--horizon", type=int, default=500)
    sweep.add_argument("--seed", type=int, default=0)
    _add_runner_flags(sweep)

    resilience = sub.add_parser(
        "resilience", help="fault drill: inject a fault, report recovery"
    )
    resilience.add_argument("--kind", choices=FAULT_KINDS, default="outage")
    resilience.add_argument("--dc", type=int, default=1, help="0-based site index")
    resilience.add_argument("--start", type=int, default=150)
    resilience.add_argument("--duration", type=int, default=60)
    resilience.add_argument(
        "--severity", type=float, default=1.0, help="capacity fraction lost"
    )
    resilience.add_argument("--v", type=float, default=7.5)
    resilience.add_argument("--beta", type=float, default=0.0)
    resilience.add_argument("--horizon", type=int, default=400)
    resilience.add_argument("--seed", type=int, default=0)
    resilience.add_argument(
        "--compare",
        action="store_true",
        help="also run the Always and RandomRouting baselines",
    )

    profile = sub.add_parser(
        "profile", help="run with telemetry on; print the hot-path table"
    )
    profile.add_argument(
        "--scenario",
        choices=("default", "paper", "small"),
        default="default",
        help="which scenario to profile (default = the paper scenario)",
    )
    profile.add_argument("--scheduler", choices=scheduler_names(), default="grefar")
    profile.add_argument("--v", type=float, default=7.5)
    profile.add_argument("--beta", type=float, default=0.0)
    profile.add_argument("--threshold", type=float, default=0.4)
    profile.add_argument("--horizon", type=int, default=200)
    profile.add_argument("--seed", type=int, default=0)
    profile.add_argument(
        "--trace", default=None, help="also stream per-slot trace events (JSONL)"
    )
    profile.add_argument(
        "--output",
        default=None,
        help="baseline file path (default: BENCH_<date>.json in the cwd)",
    )
    profile.add_argument(
        "--no-baseline",
        action="store_true",
        help="print the table only; write no BENCH_*.json",
    )

    exp = sub.add_parser("experiment", help="regenerate a paper table/figure")
    exp.add_argument("name", help=f"one of {sorted(_EXPERIMENTS)}")
    exp.add_argument("--horizon", type=int, default=None)
    exp.add_argument("--seed", type=int, default=0)
    _add_runner_flags(exp)
    _add_checkpoint_flags(exp)

    chaos = sub.add_parser(
        "chaos", help="solver-fault drill: flaky backend, supervised recovery"
    )
    chaos.add_argument(
        "--fail-rate",
        type=float,
        default=0.15,
        help="fraction of slot solves the primary backend fails on",
    )
    chaos.add_argument(
        "--mode",
        choices=("raise", "nan", "error"),
        default="raise",
        help="how the flaky backend fails (typed raise, NaN result, "
        "untyped raise)",
    )
    chaos.add_argument(
        "--scenario", choices=("paper", "small"), default="paper"
    )
    chaos.add_argument("--v", type=float, default=7.5)
    chaos.add_argument("--beta", type=float, default=0.0)
    chaos.add_argument("--horizon", type=int, default=300)
    chaos.add_argument("--seed", type=int, default=0)

    shard = sub.add_parser(
        "shard", help="sharded scatter-gather run / worker-fault drill"
    )
    shard.add_argument(
        "--scenario", choices=("paper", "small", "wide"), default="wide"
    )
    shard.add_argument(
        "--dcs",
        type=int,
        default=6,
        help="data centers in the wide scenario (ignored otherwise)",
    )
    shard.add_argument(
        "--shards", type=int, default=2, help="shard worker processes"
    )
    shard.add_argument("--v", type=float, default=7.5)
    shard.add_argument("--beta", type=float, default=0.0)
    shard.add_argument("--horizon", type=int, default=120)
    shard.add_argument("--seed", type=int, default=0)
    shard.add_argument(
        "--deadline",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-slot gather deadline (default: block until every "
        "shard answers or crashes)",
    )
    shard.add_argument(
        "--retries",
        type=int,
        default=1,
        help="re-scatter attempts per shard per slot after a failure",
    )
    shard.add_argument(
        "--max-respawns",
        type=int,
        default=2,
        help="worker respawn budget per shard before permanent degradation",
    )
    shard.add_argument(
        "--fallback",
        choices=("greedy", "hold", "zero"),
        default="greedy",
        help="degraded-mode action for a shard that cannot serve a slot",
    )
    shard.add_argument(
        "--verify",
        choices=("none", "record", "assert"),
        default="none",
        help="check every slot against the serial solve (bit-identity "
        "for beta=0, objective-gap bound otherwise)",
    )
    shard.add_argument(
        "--drill",
        choices=("kill", "hang", "straggle", "slow-start"),
        default=None,
        help="inject one process fault into a shard worker and require "
        "survival",
    )
    shard.add_argument(
        "--drill-slot",
        type=int,
        default=None,
        help="slot the drill fault fires on (default: a third into the run)",
    )
    shard.add_argument(
        "--drill-shard", type=int, default=0, help="shard the drill targets"
    )
    shard.add_argument(
        "--json",
        action="store_true",
        help="print the summary as one JSON line (machine-comparable)",
    )
    _add_checkpoint_flags(shard)

    serve = sub.add_parser(
        "serve", help="run the live job-submission gateway (docs/SERVICE.md)"
    )
    serve.add_argument("--host", default="127.0.0.1")
    serve.add_argument(
        "--port", type=int, default=0, help="TCP port (0 = ephemeral; printed)"
    )
    serve.add_argument(
        "--scenario",
        choices=("paper", "small"),
        default="small",
        help="environment trace (availability, prices); arrivals are live",
    )
    serve.add_argument("--scheduler", choices=scheduler_names(), default="grefar")
    serve.add_argument("--v", type=float, default=7.5)
    serve.add_argument("--beta", type=float, default=0.0)
    serve.add_argument("--threshold", type=float, default=0.4)
    serve.add_argument(
        "--cost-beta", type=float, default=0.0, help="measurement beta for g(t)"
    )
    serve.add_argument("--seed", type=int, default=0)
    serve.add_argument(
        "--capacity-slots",
        type=int,
        default=500,
        metavar="T",
        help="pre-generated environment horizon; the service stops there",
    )
    serve.add_argument(
        "--slot-seconds",
        type=float,
        default=None,
        metavar="S",
        help="wall-clock seconds per slot (omit for manual "
        "POST /v1/admin/tick ticking)",
    )
    serve.add_argument(
        "--intake-capacity",
        type=int,
        default=200,
        metavar="JOBS",
        help="intake buffer bound; beyond it submissions get 429 + Retry-After",
    )
    serve.add_argument(
        "--rate",
        type=float,
        default=100.0,
        help="per-account sustained rate limit (jobs/second)",
    )
    serve.add_argument(
        "--burst", type=float, default=200.0, help="per-account burst budget (jobs)"
    )
    serve.add_argument(
        "--checkpoint-every",
        type=int,
        default=1,
        metavar="N",
        help="ckpt-v1 snapshot after every N completed slots",
    )
    serve.add_argument(
        "--data-dir",
        default=".repro_cache/service",
        help="root for write-ahead logs and service checkpoints",
    )
    serve.add_argument(
        "--resume",
        action="store_true",
        help="restart from the last checkpoint + write-ahead log "
        "(no acknowledged submission is lost)",
    )

    cache = sub.add_parser("cache", help="inspect or clear the result cache")
    cache.add_argument("action", choices=("info", "clear"))

    lint = sub.add_parser(
        "lint", help="project static checker (determinism, queue hygiene, ...)"
    )
    lint.add_argument(
        "paths", nargs="*", default=["src/repro"], help="files/directories to scan"
    )
    lint.add_argument("--format", choices=("text", "json"), default="text")
    lint.add_argument("--select", default=None, help="comma-separated rule ids")
    lint.add_argument("--list-rules", action="store_true")
    lint.add_argument(
        "--baseline",
        default=None,
        metavar="FILE",
        help="suppress findings recorded in FILE; fail only on new ones",
    )
    lint.add_argument(
        "--write-baseline",
        default=None,
        metavar="FILE",
        help="snapshot current findings to FILE and exit 0",
    )

    return parser


_COMMANDS = {
    "list": _cmd_list,
    "run": _cmd_run,
    "compare": _cmd_compare,
    "sweep-v": _cmd_sweep_v,
    "resilience": _cmd_resilience,
    "chaos": _cmd_chaos,
    "shard": _cmd_shard,
    "profile": _cmd_profile,
    "serve": _cmd_serve,
    "experiment": _cmd_experiment,
    "cache": _cmd_cache,
    "lint": _cmd_lint,
}


def main(argv: Sequence[str] | None = None) -> int:
    """CLI entry point; returns the process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    return _COMMANDS[args.command](args)


if __name__ == "__main__":
    sys.exit(main())
