"""Shared validation helpers used across the :mod:`repro` package.

These helpers centralize argument checking so that every public
constructor raises consistent, informative errors.  All of them raise
:class:`ValueError` (or :class:`TypeError` for type mismatches) with a
message that names the offending parameter.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import numpy as np

__all__ = [
    "require_positive",
    "require_non_negative",
    "require_at_least",
    "require_in_range",
    "require_integer",
    "require_array_shape",
    "require_non_negative_array",
    "as_float_array",
    "as_int_array",
]


def require_positive(value: float, name: str) -> float:
    """Return *value* if strictly positive, else raise ``ValueError``."""
    if not np.isfinite(value) or value <= 0:
        raise ValueError(f"{name} must be a finite positive number, got {value!r}")
    return float(value)


def require_non_negative(value: float, name: str) -> float:
    """Return *value* if ``>= 0`` and finite, else raise ``ValueError``."""
    if not np.isfinite(value) or value < 0:
        raise ValueError(f"{name} must be a finite non-negative number, got {value!r}")
    return float(value)


def require_at_least(value: float, minimum: float, name: str) -> float:
    """Return *value* if finite and ``>= minimum``, else raise ``ValueError``."""
    if not np.isfinite(value) or value < minimum:
        raise ValueError(f"{name} must be a finite number >= {minimum}, got {value!r}")
    return float(value)


def require_in_range(value: float, low: float, high: float, name: str) -> float:
    """Return *value* if it lies in the closed interval ``[low, high]``."""
    if not np.isfinite(value) or value < low or value > high:
        raise ValueError(f"{name} must lie in [{low}, {high}], got {value!r}")
    return float(value)


def require_integer(value: int, name: str, minimum: int | None = None) -> int:
    """Return *value* as ``int`` after checking type and optional minimum."""
    if isinstance(value, bool) or not isinstance(value, (int, np.integer)):
        raise TypeError(f"{name} must be an integer, got {type(value).__name__}")
    out = int(value)
    if minimum is not None and out < minimum:
        raise ValueError(f"{name} must be >= {minimum}, got {out}")
    return out


def require_array_shape(arr: np.ndarray, shape: Sequence[int], name: str) -> np.ndarray:
    """Return *arr* if its shape matches *shape* exactly."""
    if tuple(arr.shape) != tuple(shape):
        raise ValueError(f"{name} must have shape {tuple(shape)}, got {arr.shape}")
    return arr


def require_non_negative_array(arr: np.ndarray, name: str) -> np.ndarray:
    """Return *arr* if all entries are finite and non-negative."""
    if not np.all(np.isfinite(arr)):
        raise ValueError(f"{name} must contain only finite values")
    if np.any(arr < 0):
        raise ValueError(f"{name} must be element-wise non-negative")
    return arr


def as_float_array(values: Iterable[float], name: str) -> np.ndarray:
    """Convert *values* to a 1-D float64 array, raising on failure."""
    try:
        arr = np.asarray(list(values) if not isinstance(values, np.ndarray) else values, dtype=np.float64)
    except (TypeError, ValueError) as exc:
        raise TypeError(f"{name} must be convertible to a float array") from exc
    return arr


def as_int_array(values: Iterable[int], name: str) -> np.ndarray:
    """Convert *values* to an int64 array, raising if lossy."""
    arr = np.asarray(list(values) if not isinstance(values, np.ndarray) else values)
    out = arr.astype(np.int64)
    if not np.array_equal(out, arr):
        raise ValueError(f"{name} must contain only integer values")
    return out
