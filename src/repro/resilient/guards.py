"""Numerical guards for state and trace inputs: NaN/Inf/negative screening.

Replayed price feeds and external availability traces are the classic
way garbage enters a run — a NaN price on one slot poisons the slot
objective, an Inf availability overflows the capacity coupling, a
negative price flips the "serve when cheap" threshold.
:class:`ClusterState` already *rejects* such values at construction;
the guards in this module decide what to do with raw inputs **before**
that constructor runs, under one of three policies:

``"raise"``
    Fail fast with :class:`GuardViolation` naming every offending
    field.  The right default for curated paper scenarios.
``"clamp"``
    Clamp-and-warn: negatives to zero, non-finite availability to zero
    (schedule nothing on a site reporting garbage), non-finite prices
    to the largest finite price visible in the same input (assume the
    dark site is expensive — the fail-safe direction for a cost
    minimizer).  Incidents are counted.
``"hold"``
    Hold-last-good: offending entries become NaN in a ``missing_ok``
    state, which routes them through the faults subsystem's
    last-known-good machinery
    (:meth:`repro.schedulers.base.Scheduler.prepare_state`) — each bad
    entry takes the most recent cleanly observed value for that entry.
    For whole traces, :func:`sanitize_trace_arrays` forward-fills along
    the time axis instead.

Every guarded repair is counted on the always-on stats registry under
``resilient.guard.<field>.<kind>``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List, Optional, Tuple, Union

import numpy as np

from repro.model.state import ClusterState
from repro.obs.registry import stats_registry

__all__ = [
    "GUARD_POLICIES",
    "GuardIncident",
    "GuardViolation",
    "sanitize_state",
    "sanitize_trace_arrays",
]

GUARD_POLICIES = ("raise", "clamp", "hold")


class GuardViolation(ValueError):
    """Raised by the ``"raise"`` policy when an input carries bad values."""


@dataclass(frozen=True)
class GuardIncident:
    """One class of repaired entries in one guarded field."""

    field: str  # "availability" | "prices" | "arrivals"
    kind: str  # "nan" | "inf" | "negative"
    count: int
    policy: str

    def render(self) -> str:
        return f"{self.field}: {self.count} {self.kind} entr{'y' if self.count == 1 else 'ies'} ({self.policy})"


def _require_policy(policy: str) -> str:
    if policy not in GUARD_POLICIES:
        raise ValueError(
            f"unknown guard policy {policy!r}; choose from {GUARD_POLICIES}"
        )
    return policy


def _masks(arr: np.ndarray) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """(nan, inf, negative) masks; negative excludes NaN by construction."""
    nan = np.isnan(arr)
    inf = np.isinf(arr)
    negative = arr < 0  # NaN compares False; -Inf is counted as inf below
    negative = negative & ~inf
    return nan, inf, negative


def _note(
    incidents: List[GuardIncident], field: str, policy: str, **kinds: np.ndarray
) -> None:
    registry = stats_registry()
    for kind, mask in kinds.items():
        count = int(np.count_nonzero(mask))
        if count == 0:
            continue
        incidents.append(
            GuardIncident(field=field, kind=kind, count=count, policy=policy)
        )
        registry.counter_add(f"resilient.guard.{field}.{kind}", count)


def sanitize_state(
    availability: Union[np.ndarray, ClusterState],
    prices: Optional[np.ndarray] = None,
    policy: str = "hold",
) -> Tuple[ClusterState, Tuple[GuardIncident, ...]]:
    """Screen raw availability/prices and return a safe ``ClusterState``.

    Accepts either two raw arrays or an existing :class:`ClusterState`
    (whose NaN entries, if any, are legal missing signals and pass
    through untouched).  Clean inputs return an unchanged state — for a
    ``ClusterState`` argument, the *same object* — and no incidents, so
    the healthy path costs two ``isfinite`` scans.

    Under ``"hold"`` the returned state carries NaN (``missing_ok``)
    wherever the input was bad; pass it through a scheduler's
    ``prepare_state`` to apply the last-known-good substitution.
    """
    _require_policy(policy)
    if isinstance(availability, ClusterState):
        if prices is not None:
            raise ValueError("pass either a ClusterState or two raw arrays, not both")
        state = availability
        avail = np.asarray(state.availability, dtype=np.float64)
        price = np.asarray(state.prices, dtype=np.float64)
    else:
        state = None
        avail = np.array(availability, dtype=np.float64)
        price = np.array(prices, dtype=np.float64)

    a_nan, a_inf, a_neg = _masks(avail)
    p_nan, p_inf, p_neg = _masks(price)
    a_bad = a_inf | a_neg
    p_bad = p_inf | p_neg
    if state is None:
        # Raw arrays: NaN is bad too (only ClusterState legitimizes it
        # as a missing-signal marker).
        a_bad = a_bad | a_nan
        p_bad = p_bad | p_nan

    if not (a_bad.any() or p_bad.any()):
        if state is not None:
            return state, ()
        return (
            ClusterState(avail, price, missing_ok=bool(a_nan.any() or p_nan.any())),
            (),
        )

    incidents: List[GuardIncident] = []
    _note(
        incidents,
        "availability",
        policy,
        nan=(a_nan & a_bad),
        inf=a_inf,
        negative=a_neg,
    )
    _note(incidents, "prices", policy, nan=(p_nan & p_bad), inf=p_inf, negative=p_neg)

    if policy == "raise":
        raise GuardViolation(
            "bad state input: " + "; ".join(i.render() for i in incidents)
        )
    if policy == "clamp":
        finite_prices = price[np.isfinite(price) & (price >= 0)]
        fallback_price = float(finite_prices.max()) if finite_prices.size else 1.0
        avail = np.where(a_bad, 0.0, avail)
        price = np.where(p_inf | (p_nan & p_bad), fallback_price, price)
        price = np.where(p_neg, 0.0, price)
        missing = bool(np.isnan(avail).any() or np.isnan(price).any())
        return ClusterState(avail, price, missing_ok=missing), tuple(incidents)
    # "hold": mark bad entries missing; prepare_state fills them with
    # the last-known-good value (fail-safe defaults before one exists).
    avail = np.where(a_bad, np.nan, avail)
    price = np.where(p_bad, np.nan, price)
    return ClusterState(avail, price, missing_ok=True), tuple(incidents)


def _forward_fill(column: np.ndarray, bad: np.ndarray, fallback: float) -> np.ndarray:
    """Replace bad entries with the previous good value along axis 0."""
    out = column.copy()
    last = fallback
    for t in range(out.shape[0]):
        if bad[t]:
            out[t] = last
        else:
            last = out[t]
    return out


def sanitize_trace_arrays(
    arrivals: np.ndarray,
    availability: np.ndarray,
    prices: np.ndarray,
    policy: str = "raise",
) -> Tuple[np.ndarray, np.ndarray, np.ndarray, Tuple[GuardIncident, ...]]:
    """Screen whole scenario traces (time on axis 0) before building them.

    Same three policies as :func:`sanitize_state`; under ``"hold"`` bad
    entries take the previous good value in the same series
    (forward-fill), with the clamp fail-safe for leading bad entries.
    Arrivals have no "last-known-good" semantics — a corrupt arrival
    count becomes zero under both repair policies (inventing jobs is
    never fail-safe).
    """
    _require_policy(policy)
    arrivals = np.array(arrivals, dtype=np.float64)
    availability = np.array(availability, dtype=np.float64)
    prices = np.array(prices, dtype=np.float64)

    masks = {
        "arrivals": _masks(arrivals),
        "availability": _masks(availability),
        "prices": _masks(prices),
    }
    bad = {
        name: (nan | inf | neg) for name, (nan, inf, neg) in masks.items()
    }
    if not any(m.any() for m in bad.values()):
        return arrivals, availability, prices, ()

    incidents: List[GuardIncident] = []
    for name, (nan, inf, neg) in masks.items():
        _note(incidents, name, policy, nan=nan, inf=inf, negative=neg)
    if policy == "raise":
        raise GuardViolation(
            "bad trace input: " + "; ".join(i.render() for i in incidents)
        )

    arrivals = np.where(bad["arrivals"], 0.0, arrivals)
    finite_prices = prices[np.isfinite(prices) & (prices >= 0)]
    fallback_price = float(finite_prices.max()) if finite_prices.size else 1.0
    if policy == "clamp":
        availability = np.where(bad["availability"], 0.0, availability)
        prices = np.where(bad["prices"], fallback_price, prices)
        prices = np.where(masks["prices"][2], 0.0, prices)
    else:  # "hold": forward-fill per series
        flat_avail = availability.reshape(availability.shape[0], -1)
        flat_bad = bad["availability"].reshape(availability.shape[0], -1)
        for col in range(flat_avail.shape[1]):
            flat_avail[:, col] = _forward_fill(
                flat_avail[:, col], flat_bad[:, col], 0.0
            )
        availability = flat_avail.reshape(availability.shape)
        for col in range(prices.shape[1] if prices.ndim > 1 else 1):
            series = prices[:, col] if prices.ndim > 1 else prices
            series_bad = bad["prices"][:, col] if prices.ndim > 1 else bad["prices"]
            filled = _forward_fill(series, series_bad, fallback_price)
            if prices.ndim > 1:
                prices[:, col] = filled
            else:
                prices = filled
    return arrivals, availability, prices, tuple(incidents)
