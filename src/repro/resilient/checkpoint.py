"""Crash-safe checkpointing: atomic, schema-versioned run snapshots.

A killed process must not lose a long horizon.  The simulator
periodically pickles its full mid-run state — queue network, metrics
collector, scheduler (including any RNG state, e.g. the random-routing
baseline's generator), admission policy, fault injector and the loop
counters — into ``.repro_cache/checkpoints/<key>.ckpt``.  Resuming
restores every object and continues from the next slot, producing
bit-identical metrics and trace to an uninterrupted run: the restored
state is exactly the state the uninterrupted run had at that slot, and
everything downstream is deterministic.

File format: one pickle of ``{"schema": CHECKPOINT_SCHEMA, "key": ...,
"payload": {...}}``.  Writes go to a same-directory temp file followed
by ``os.replace``, so a crash mid-write leaves the previous checkpoint
intact rather than a torn file.  A schema-tag or key mismatch on load
is treated as "no checkpoint" (:meth:`Checkpointer.load` returns
``None``) — stale snapshots from an older code version are never
resumed into newer code.

:class:`SimulationKilled` powers the crash drill: a checkpointer with
``kill_at`` set saves its snapshot and then raises mid-run, letting
tests and the CI ``chaos`` job kill a run at an exact slot and prove
the resumed run is bit-identical.
"""

from __future__ import annotations

import os
import pickle
from dataclasses import dataclass, field
from pathlib import Path
from typing import Any, Dict, Optional, Union

from repro._validation import require_integer
from repro.obs.registry import stats_registry

__all__ = [
    "CHECKPOINT_SCHEMA",
    "CheckpointError",
    "Checkpointer",
    "DEFAULT_CHECKPOINT_DIR",
    "SimulationKilled",
    "checkpoint_path",
    "load_checkpoint",
    "save_checkpoint",
]

#: Bump whenever the snapshot payload layout changes; mismatching
#: checkpoints are ignored, never migrated.
CHECKPOINT_SCHEMA = "ckpt-v1"

#: Checkpoints live next to the result cache.
DEFAULT_CHECKPOINT_DIR = Path(".repro_cache") / "checkpoints"


class CheckpointError(RuntimeError):
    """A checkpoint could not be written or read."""


class SimulationKilled(RuntimeError):
    """Raised by the crash drill after the ``kill_at`` slot completed.

    Carries where the run died and where its checkpoint (if any) lives
    so the CLI can print an actionable resume hint.
    """

    def __init__(self, slot: int, path: Optional[Path] = None) -> None:
        self.slot = slot
        self.path = path
        hint = f"; resume from {path}" if path is not None else ""
        super().__init__(f"simulation killed after slot {slot} (crash drill){hint}")


def checkpoint_path(
    key: str, directory: Union[str, Path, None] = None
) -> Path:
    """Where the checkpoint for cache-key *key* lives."""
    if not key:
        raise ValueError("checkpointing requires a non-empty run key")
    base = Path(directory) if directory is not None else DEFAULT_CHECKPOINT_DIR
    return base / f"{key}.ckpt"


def save_checkpoint(path: Union[str, Path], key: str, payload: Dict[str, Any]) -> Path:
    """Atomically write *payload* under the current schema tag."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    record = {"schema": CHECKPOINT_SCHEMA, "key": key, "payload": payload}
    tmp = path.with_suffix(f".tmp.{os.getpid()}")
    try:
        with open(tmp, "wb") as handle:
            pickle.dump(record, handle, protocol=pickle.HIGHEST_PROTOCOL)
        os.replace(tmp, path)
    except (OSError, pickle.PicklingError) as exc:
        try:
            tmp.unlink()
        except OSError:
            pass
        raise CheckpointError(f"could not write checkpoint {path}: {exc}") from exc
    stats_registry().counter_add("resilient.checkpoint.saves")
    return path


def load_checkpoint(
    path: Union[str, Path], key: Optional[str] = None
) -> Optional[Dict[str, Any]]:
    """Load a checkpoint payload; ``None`` if absent, stale or unreadable.

    A missing file, a torn/corrupt pickle, a schema-tag mismatch or
    (when *key* is given) a key mismatch all mean "no usable
    checkpoint": resuming silently falls back to a fresh run rather
    than crashing or, worse, resuming the wrong run.
    """
    path = Path(path)
    try:
        with open(path, "rb") as handle:
            record = pickle.load(handle)
    except FileNotFoundError:
        return None
    except (OSError, pickle.UnpicklingError, EOFError, AttributeError, ValueError):
        stats_registry().counter_add("resilient.checkpoint.corrupt")
        return None
    if not isinstance(record, dict) or record.get("schema") != CHECKPOINT_SCHEMA:
        stats_registry().counter_add("resilient.checkpoint.schema_mismatch")
        return None
    if key is not None and record.get("key") != key:
        stats_registry().counter_add("resilient.checkpoint.key_mismatch")
        return None
    stats_registry().counter_add("resilient.checkpoint.loads")
    return record.get("payload")


@dataclass
class Checkpointer:
    """Per-run checkpoint schedule handed to :meth:`Simulator.run`.

    Parameters
    ----------
    key:
        Stable identity of the run (the runner's cache key); names the
        checkpoint file and guards against resuming a different spec.
    every:
        Save after every *every* completed slots (``None``: never save
        periodically — useful for a resume-only policy).
    directory:
        Checkpoint directory, default ``.repro_cache/checkpoints``.
    kill_at:
        Crash drill: raise :class:`SimulationKilled` once this many
        slots completed (after saving a final snapshot first, so the
        killed run is always resumable).
    """

    key: str
    every: Optional[int] = None
    directory: Union[str, Path] = field(default=DEFAULT_CHECKPOINT_DIR)
    kill_at: Optional[int] = None

    def __post_init__(self) -> None:
        if not self.key:
            raise ValueError("checkpointing requires a non-empty run key")
        if self.every is not None:
            require_integer(self.every, "every", minimum=1)
        if self.kill_at is not None:
            require_integer(self.kill_at, "kill_at", minimum=1)

    @property
    def path(self) -> Path:
        return checkpoint_path(self.key, self.directory)

    # ------------------------------------------------------------------
    def due(self, completed_slots: int) -> bool:
        """True when a periodic save is due after *completed_slots*."""
        if self.every is None:
            return False
        return completed_slots % self.every == 0

    def should_kill(self, completed_slots: int) -> bool:
        return self.kill_at is not None and completed_slots >= self.kill_at

    def save(self, payload: Dict[str, Any]) -> Path:
        return save_checkpoint(self.path, self.key, payload)

    def load(self) -> Optional[Dict[str, Any]]:
        return load_checkpoint(self.path, key=self.key)

    def clear(self) -> None:
        """Remove the checkpoint (called after a successful run)."""
        try:
            self.path.unlink()
        except OSError:
            pass
