"""Supervised per-slot solving: fallback chains around the optimize backends.

An online scheduler must emit *some* feasible decision every slot — a
crashed LP on slot 4711 of a week-long heavy-traffic run must not lose
the horizon.  :class:`SupervisedSolver` wraps the
:mod:`repro.optimize` backends with that guarantee:

1. run the configured backend (optionally under a retry budget and an
   enforced wall-clock budget — see :class:`SolverPolicy.timeout`),
2. validate the returned action — finite, feasible after
   :meth:`~repro.optimize.slot_problem.SlotServiceProblem.clip_feasible`,
   and clip-idempotent,
3. on any failure, record a structured :class:`SolverIncident` and
   degrade down an explicit fallback chain, e.g. ``lp -> greedy ->
   zero``.

The terminal ``"zero"`` backend returns the all-zeros service matrix,
which is feasible for every slot problem, so the chain cannot run dry.

**Bit-identity.** On a healthy solve the supervisor returns exactly
``problem.clip_feasible(backend(problem))`` — the same array the
unsupervised call sites used to produce — so supervision changes no
decision on healthy inputs (asserted by the golden-trace tests).

**Determinism.** The default policy has ``timeout=None``: a wall-clock
budget makes decisions depend on machine load, which would break the
runner's bit-identity and golden-trace guarantees.  Opt into a timeout
only for interactive or exploratory runs; the ``timeout=None`` path
runs no watchdog thread and is byte-identical to the unbudgeted solve.

Incidents are counted on the always-on stats registry
(:func:`repro.obs.registry.stats_registry`) under ``resilient.*`` and
mirrored to the hot-path metrics registry when telemetry is on.
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Callable, Dict, List, Optional, Sequence, Tuple, Union

import numpy as np

from repro._validation import require_integer
from repro.obs.registry import metrics_registry, stats_registry
from repro.optimize import (
    SolverFailure,
    solve_greedy,
    solve_lp,
    solve_projected_gradient,
    solve_qp,
)
from repro.optimize.slot_problem import SlotServiceProblem

__all__ = [
    "BACKENDS",
    "DEFAULT_CHAINS",
    "SolveOutcome",
    "SolverIncident",
    "SolverPolicy",
    "SupervisedSolver",
    "chain_for",
    "default_supervisor",
    "solve_service",
    "solve_zero",
]


def solve_zero(problem: SlotServiceProblem) -> np.ndarray:
    """The all-zeros service matrix: always feasible, serves nothing.

    Terminal fallback of every chain — "skip this slot" is the online
    scheduler's last resort, and it is always a legal action (the queue
    dynamics (12)-(13) simply carry the backlog forward).
    """
    return np.zeros_like(problem.h_upper)


#: Name -> solve function for every supervisable backend.
BACKENDS: Dict[str, Callable[[SlotServiceProblem], np.ndarray]] = {
    "greedy": solve_greedy,
    "lp": solve_lp,
    "qp": solve_qp,
    "projected_gradient": solve_projected_gradient,
    "zero": solve_zero,
}

#: Primary backend -> its default fallback chain.  Every chain degrades
#: through the exact closed-form greedy solver (cheap, dependency-light)
#: before giving up the slot with the zero action.  The fairness-aware
#: QP falls back to greedy too: the beta = 0 solution is feasible for
#: the beta > 0 problem (same constraint set), it merely ignores the
#: fairness pull for that one slot.
DEFAULT_CHAINS: Dict[str, Tuple[str, ...]] = {
    "greedy": ("greedy", "zero"),
    "lp": ("lp", "greedy", "zero"),
    "qp": ("qp", "greedy", "zero"),
    "projected_gradient": ("projected_gradient", "greedy", "zero"),
    "zero": ("zero",),
}

ChainEntry = Union[str, Callable[[SlotServiceProblem], np.ndarray]]


def chain_for(primary: ChainEntry) -> Tuple[ChainEntry, ...]:
    """The default fallback chain starting at *primary*.

    Unknown names raise; a callable primary (e.g. a chaos backend) gets
    the standard ``greedy -> zero`` tail appended.
    """
    if callable(primary):
        return (primary, "greedy", "zero")
    try:
        return DEFAULT_CHAINS[primary]
    except KeyError:
        raise ValueError(
            f"unknown solver backend {primary!r}; choose from {sorted(BACKENDS)}"
        ) from None


def _entry_label(entry: ChainEntry) -> str:
    if isinstance(entry, str):
        return entry
    return getattr(entry, "name", None) or getattr(entry, "__name__", repr(entry))


def _entry_callable(entry: ChainEntry) -> Callable[[SlotServiceProblem], np.ndarray]:
    if isinstance(entry, str):
        try:
            return BACKENDS[entry]
        except KeyError:
            raise ValueError(
                f"unknown solver backend {entry!r}; choose from {sorted(BACKENDS)}"
            ) from None
    return entry


@dataclass(frozen=True)
class SolverIncident:
    """One failed solve attempt, as recorded by the supervisor.

    ``reason`` is a short category (``"raised"``, ``"non-finite"``,
    ``"infeasible"``, ``"clip-unstable"``, ``"timeout"``); ``detail``
    carries the human-readable specifics (exception text, solver status
    message).
    """

    slot: Optional[int]
    backend: str
    attempt: int
    reason: str
    detail: str = ""

    def render(self) -> str:
        where = f"slot {self.slot}" if self.slot is not None else "slot ?"
        text = f"[{where}] {self.backend} attempt {self.attempt}: {self.reason}"
        if self.detail:
            text += f" ({self.detail})"
        return text


@dataclass(frozen=True)
class SolveOutcome:
    """What one supervised solve produced."""

    #: The validated (clipped, feasible) service matrix.
    h: np.ndarray
    #: Label of the backend that finally served the slot.
    backend: str
    #: True when the serving backend was not the first chain entry.
    degraded: bool
    #: Incidents recorded during this call, in order.
    incidents: Tuple[SolverIncident, ...] = ()


@dataclass(frozen=True)
class SolverPolicy:
    """Supervision knobs.

    Parameters
    ----------
    retries:
        Extra attempts per backend before degrading to the next chain
        entry (0 = one attempt each).  Deterministic backends fail
        identically on retry; the budget exists for stochastic or
        external backends.
    timeout:
        Optional *enforced* wall-clock budget in seconds across the
        whole chain.  Non-terminal attempts run on a daemon watchdog
        thread and are abandoned once the remaining budget is spent —
        a runaway backend cannot stall the slot — recording a
        ``"timeout"`` incident and degrading down the chain; the
        deadline is also checked between attempts.  The terminal entry
        always runs unthreaded so the chain is guaranteed to produce a
        result.  **Default None** (no thread, no budget): any timeout
        makes decisions load-dependent, which breaks the bit-identity
        guarantees (golden trace, serial/parallel, resume) — opt in
        only where determinism does not matter.
    feasibility_tol:
        Tolerance handed to
        :meth:`~repro.optimize.slot_problem.SlotServiceProblem.is_feasible`.
    """

    retries: int = 0
    timeout: Optional[float] = None
    feasibility_tol: float = 1e-6

    def __post_init__(self) -> None:
        require_integer(self.retries, "retries", minimum=0)
        if self.timeout is not None and not self.timeout > 0:
            raise ValueError(f"timeout must be positive or None, got {self.timeout}")


class SupervisedSolver:
    """Run slot solves under supervision with an explicit fallback chain.

    Parameters
    ----------
    chain:
        Optional fixed chain of backend names and/or callables.  When
        ``None`` (default) the chain is resolved per call from the
        ``primary`` argument via :func:`chain_for`.
    policy:
        A :class:`SolverPolicy`; defaults to the deterministic policy
        (no timeout, no retries).
    max_incidents:
        Cap on the retained incident log (oldest dropped first) so a
        pathological run cannot grow memory without bound.  Counters on
        the stats registry keep exact totals regardless.
    """

    def __init__(
        self,
        chain: Optional[Sequence[ChainEntry]] = None,
        policy: Optional[SolverPolicy] = None,
        max_incidents: int = 1000,
    ) -> None:
        self.chain: Optional[Tuple[ChainEntry, ...]] = (
            tuple(chain) if chain is not None else None
        )
        if self.chain is not None and not self.chain:
            raise ValueError("chain must have at least one entry")
        if self.chain is not None:
            for entry in self.chain:
                _entry_callable(entry)  # validate names eagerly
        self.policy = policy if policy is not None else SolverPolicy()
        self.max_incidents = require_integer(
            max_incidents, "max_incidents", minimum=1
        )
        self.incidents: List[SolverIncident] = []

    # ------------------------------------------------------------------
    def clear_incidents(self) -> None:
        """Drop the retained incident log (counters are untouched)."""
        self.incidents.clear()

    @property
    def incident_count(self) -> int:
        return len(self.incidents)

    # ------------------------------------------------------------------
    def solve(
        self,
        problem: SlotServiceProblem,
        primary: ChainEntry = "greedy",
        slot: Optional[int] = None,
    ) -> SolveOutcome:
        """Solve *problem*, degrading down the chain until a valid ``h``.

        Returns a :class:`SolveOutcome`; never raises for a backend
        failure.  Only a defect in the terminal zero action itself (or
        ``KeyboardInterrupt``/``SystemExit``) can escape.
        """
        chain = self.chain if self.chain is not None else chain_for(primary)
        policy = self.policy
        reg = stats_registry()
        deadline = None
        if policy.timeout is not None:
            deadline = reg.clock() + policy.timeout
        call_incidents: List[SolverIncident] = []
        last_index = len(chain) - 1
        for position, entry in enumerate(chain):
            label = _entry_label(entry)
            backend = _entry_callable(entry)
            attempts = 1 if position == last_index else 1 + policy.retries
            for attempt in range(1, attempts + 1):
                if (
                    deadline is not None
                    and position != last_index
                    and reg.clock() > deadline
                ):
                    self._record(
                        call_incidents,
                        SolverIncident(
                            slot=slot,
                            backend=label,
                            attempt=attempt,
                            reason="timeout",
                            detail=f"budget of {policy.timeout:g}s exhausted",
                        ),
                    )
                    break  # skip to the next (eventually terminal) entry
                # Enforce the remaining budget on non-terminal attempts;
                # the terminal entry always runs unthreaded so the chain
                # is guaranteed to return.
                budget = None
                if deadline is not None and position != last_index:
                    budget = deadline - reg.clock()
                failure = self._attempt(problem, backend, policy, budget)
                if not isinstance(failure, _Failure):
                    h = failure
                    degraded = position > 0
                    if degraded:
                        reg.counter_add("resilient.fallbacks")
                        reg.counter_add(f"resilient.fallback.{label}")
                        if label == "zero":
                            reg.counter_add("resilient.zero_actions")
                    return SolveOutcome(
                        h=h,
                        backend=label,
                        degraded=degraded,
                        incidents=tuple(call_incidents),
                    )
                self._record(
                    call_incidents,
                    SolverIncident(
                        slot=slot,
                        backend=label,
                        attempt=attempt,
                        reason=failure.reason,
                        detail=failure.detail,
                    ),
                )
        # Unreachable with a well-formed chain: the zero action is
        # always finite, feasible and clip-stable.  Fail loudly if a
        # custom chain lacks a working terminal entry.
        raise SolverFailure(
            _entry_label(chain[-1]),
            f"every backend in chain {tuple(_entry_label(e) for e in chain)} failed",
            problem,
        )

    # ------------------------------------------------------------------
    def _attempt(self, problem, backend, policy, budget=None):
        """One backend attempt: run, clip, validate.

        With a *budget* (seconds) the backend runs on a daemon watchdog
        thread and is abandoned once the budget is spent.  Returns the
        validated ``h`` on success, a :class:`_Failure` otherwise.
        """
        try:
            if budget is None:
                raw = backend(problem)
            else:
                raw = _call_with_budget(backend, problem, budget)
        except (KeyboardInterrupt, SystemExit):  # pragma: no cover
            raise
        except _AttemptTimeout:
            return _Failure(
                "timeout", f"attempt abandoned after {budget:g}s budget"
            )
        except SolverFailure as exc:
            return _Failure("raised", str(exc))
        except Exception as exc:  # noqa: BLE001 - supervision boundary
            return _Failure("raised", f"{type(exc).__name__}: {exc}")
        raw = np.asarray(raw, dtype=np.float64)
        if raw.shape != problem.h_upper.shape:
            return _Failure(
                "infeasible",
                f"shape {raw.shape} != {problem.h_upper.shape}",
            )
        if not np.all(np.isfinite(raw)):
            return _Failure("non-finite", "backend returned NaN/Inf entries")
        h = problem.clip_feasible(raw)
        if not problem.is_feasible(h, tol=policy.feasibility_tol):
            return _Failure("infeasible", "clipped solution violates constraints")
        if not np.allclose(problem.clip_feasible(h), h, rtol=0.0, atol=1e-9):
            return _Failure("clip-unstable", "clip_feasible is not idempotent here")
        return h

    def _record(self, call_incidents, incident: SolverIncident) -> None:
        call_incidents.append(incident)
        self.incidents.append(incident)
        if len(self.incidents) > self.max_incidents:
            del self.incidents[: -self.max_incidents]
        stats = stats_registry()
        stats.counter_add("resilient.incidents")
        stats.counter_add(f"resilient.failures.{incident.backend}")
        metrics = metrics_registry()
        metrics.counter_add("resilient.incidents")
        metrics.counter_add(f"resilient.failures.{incident.backend}")


@dataclass(frozen=True)
class _Failure:
    """Internal: why one attempt was rejected."""

    reason: str
    detail: str = ""


class _AttemptTimeout(Exception):
    """Internal: a budgeted attempt outlived its wall-clock budget."""


def _call_with_budget(backend, problem, budget):
    """Run ``backend(problem)`` on a daemon thread, bounded by *budget*.

    The abandoned thread cannot be killed — it is daemonized and its
    eventual result is discarded — but the caller regains control after
    at most *budget* seconds, which is the property the supervision
    chain needs.  Exceptions from the backend are re-raised here so the
    caller's handling is identical to the unbudgeted path.
    """
    box: dict = {}

    def _run() -> None:
        try:
            box["value"] = backend(problem)
        except BaseException as exc:  # noqa: BLE001 - relayed to caller
            box["error"] = exc

    thread = threading.Thread(
        target=_run, name="repro-solver-attempt", daemon=True
    )
    thread.start()
    thread.join(max(budget, 0.0))
    if thread.is_alive():
        raise _AttemptTimeout
    if "error" in box:
        raise box["error"]
    return box["value"]


# ----------------------------------------------------------------------
# Module-level convenience for the eager baselines
# ----------------------------------------------------------------------
_DEFAULT_SUPERVISOR = SupervisedSolver()


def default_supervisor() -> SupervisedSolver:
    """The process-wide supervisor behind :func:`solve_service`."""
    return _DEFAULT_SUPERVISOR


def solve_service(
    problem: SlotServiceProblem,
    primary: ChainEntry = "greedy",
    slot: Optional[int] = None,
) -> np.ndarray:
    """Supervised drop-in for ``problem.clip_feasible(backend(problem))``.

    The one-line entry point the baseline schedulers use (staticcheck
    rule GF008 keeps direct backend calls out of scheduler code).
    Returns the validated ``h`` from :meth:`SupervisedSolver.solve` on
    the shared :func:`default_supervisor`.
    """
    return _DEFAULT_SUPERVISOR.solve(problem, primary=primary, slot=slot).h
