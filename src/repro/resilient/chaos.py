"""Chaos drill: deterministic solver-fault injection for the supervisor.

The acceptance bar for the supervision layer is concrete: with the
primary backend forced to fail on >= 10% of slots, a full paper
scenario must complete with zero uncaught exceptions, a feasible action
every slot, and the fallbacks visible in the ``resilient.*`` counters.
:class:`FlakyBackend` provides the forcing — a picklable, seeded
wrapper around a real backend that fails deterministically on a fixed
fraction of calls — and :func:`run_chaos_drill` packages the whole
check behind ``repro chaos`` and the CI ``chaos`` job.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from repro._validation import require_in_range, require_integer
from repro.obs.registry import stats_registry
from repro.optimize import SolverFailure
from repro.resilient.supervisor import (
    SupervisedSolver,
    _entry_callable,
    chain_for,
)

__all__ = ["ChaosReport", "FlakyBackend", "run_chaos_drill"]


class FlakyBackend:
    """A solver backend that fails on a seeded fraction of its calls.

    Failure ``mode``:

    * ``"raise"`` — raise :class:`~repro.optimize.SolverFailure` (the
      typed path a real LP/QP failure takes);
    * ``"nan"`` — return an all-NaN matrix (exercises the supervisor's
      result validation rather than its exception handling);
    * ``"error"`` — raise a bare ``ValueError`` (an *untyped* backend
      bug; the supervisor must contain those too).

    The failure pattern depends only on ``(seed, call index)``, so a
    drill is reproducible and a resumed drill — which replays the same
    call sequence from the restored scheduler — fails on the same slots.
    """

    _MODES = ("raise", "nan", "error")

    def __init__(
        self,
        backend: str = "greedy",
        failure_rate: float = 0.1,
        seed: int = 0,
        mode: str = "raise",
    ) -> None:
        self.backend = backend
        self._solve = _entry_callable(backend)
        self.failure_rate = require_in_range(
            failure_rate, 0.0, 1.0, "failure_rate"
        )
        self.seed = require_integer(seed, "seed", minimum=0)
        if mode not in self._MODES:
            raise ValueError(f"unknown failure mode {mode!r}; choose from {self._MODES}")
        self.mode = mode
        self.calls = 0
        self.failures = 0
        self._rng = np.random.default_rng(seed)
        self.name = f"flaky-{backend}"

    def __call__(self, problem) -> np.ndarray:
        self.calls += 1
        if self._rng.random() < self.failure_rate:
            self.failures += 1
            if self.mode == "nan":
                return np.full_like(problem.h_upper, np.nan)
            if self.mode == "error":
                raise ValueError(f"injected untyped fault on call {self.calls}")
            raise SolverFailure(
                self.backend, f"injected fault on call {self.calls}", problem
            )
        return self._solve(problem)

    # The wrapped solve function is re-resolved on unpickle so the
    # callable itself never travels between processes.
    def __getstate__(self) -> dict:
        state = dict(self.__dict__)
        del state["_solve"]
        return state

    def __setstate__(self, state: dict) -> None:
        self.__dict__.update(state)
        self._solve = _entry_callable(self.backend)


@dataclass(frozen=True)
class ChaosReport:
    """What one chaos drill observed."""

    slots: int
    injected_failures: int
    incidents: int
    fallbacks: int
    zero_actions: int
    counters: Dict[str, float]
    summary: object  # SimulationSummary

    @property
    def survived(self) -> bool:
        """True when the run completed and every injected fault was absorbed."""
        return self.incidents >= self.injected_failures > 0

    def render(self) -> str:
        lines = [
            f"chaos drill: {self.slots} slots completed, "
            f"{self.injected_failures} faults injected",
            f"  incidents recorded : {self.incidents}",
            f"  fallback solves    : {self.fallbacks}",
            f"  zero-action slots  : {self.zero_actions}",
        ]
        for name in sorted(self.counters):
            lines.append(f"  {name:<30s} {self.counters[name]:g}")
        return "\n".join(lines)


def run_chaos_drill(
    scenario,
    scheduler,
    failure_rate: float = 0.15,
    seed: int = 0,
    mode: str = "raise",
    horizon: Optional[int] = None,
) -> ChaosReport:
    """Run *scheduler* with a flaky primary backend; validate every slot.

    The scheduler must expose a :class:`SupervisedSolver` on a
    ``supervisor`` attribute and a ``select_backend()`` method (i.e. be
    a :class:`~repro.core.grefar.GreFarScheduler`).  Its primary backend
    is wrapped in a :class:`FlakyBackend` and the run executes with
    ``validate=True``, so an infeasible action on any slot fails loudly
    instead of averaging out.
    """
    from repro.simulation.simulator import Simulator

    primary = scheduler.select_backend()
    flaky = FlakyBackend(
        backend=primary, failure_rate=failure_rate, seed=seed, mode=mode
    )
    # The flaky wrapper sits in front of the primary's own default
    # chain, so an injected fault degrades to the *real* backend first
    # and the slot is still solved properly, not just zeroed.
    scheduler.supervisor = SupervisedSolver(chain=(flaky, *chain_for(primary)))
    stats = stats_registry()
    stats.reset("resilient.")
    result = Simulator(scenario, scheduler, validate=True).run(horizon)
    counters = {
        name: value
        for name, value in stats.counters().items()
        if name.startswith("resilient.")
    }
    return ChaosReport(
        slots=len(result.metrics.energy_cost),
        injected_failures=flaky.failures,
        incidents=int(counters.get("resilient.incidents", 0)),
        fallbacks=int(counters.get("resilient.fallbacks", 0)),
        zero_actions=int(counters.get("resilient.zero_actions", 0)),
        counters=counters,
        summary=result.summary,
    )
