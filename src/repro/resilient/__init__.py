"""Supervision layer: fallback chains, numerical guards, checkpoint/resume.

Three guarantees for long, production-scale runs (ROADMAP north star):

* **No slot is ever lost to a solver.**
  :class:`~repro.resilient.supervisor.SupervisedSolver` runs the
  configured :mod:`repro.optimize` backend, validates its answer and
  degrades down an explicit fallback chain (``lp -> greedy -> zero``)
  on any failure, recording :class:`SolverIncident` records and
  ``resilient.*`` counters through :mod:`repro.obs`.  ``core/grefar.py``
  and every eager baseline route through it (enforced by staticcheck
  rule GF008).
* **Garbage inputs cannot poison a run.**
  :func:`~repro.resilient.guards.sanitize_state` /
  :func:`~repro.resilient.guards.sanitize_trace_arrays` screen
  NaN/Inf/negative prices and availability under a configurable policy
  (raise, clamp-and-warn, hold-last-good).
* **A killed process does not lose the horizon.**
  :class:`~repro.resilient.checkpoint.Checkpointer` snapshots the full
  simulation state atomically under ``.repro_cache/checkpoints/``; a
  resumed run is bit-identical to an uninterrupted one (see
  ``docs/SUPERVISION.md``).

The chaos drill (``repro chaos``, :func:`run_chaos_drill`) proves the
first guarantee end to end with deterministic fault injection.
"""

from repro.resilient.chaos import ChaosReport, FlakyBackend, run_chaos_drill
from repro.resilient.checkpoint import (
    CHECKPOINT_SCHEMA,
    CheckpointError,
    Checkpointer,
    DEFAULT_CHECKPOINT_DIR,
    SimulationKilled,
    checkpoint_path,
    load_checkpoint,
    save_checkpoint,
)
from repro.resilient.guards import (
    GUARD_POLICIES,
    GuardIncident,
    GuardViolation,
    sanitize_state,
    sanitize_trace_arrays,
)
from repro.resilient.supervisor import (
    BACKENDS,
    DEFAULT_CHAINS,
    SolveOutcome,
    SolverIncident,
    SolverPolicy,
    SupervisedSolver,
    chain_for,
    default_supervisor,
    solve_service,
    solve_zero,
)

__all__ = [
    "BACKENDS",
    "CHECKPOINT_SCHEMA",
    "ChaosReport",
    "CheckpointError",
    "Checkpointer",
    "DEFAULT_CHAINS",
    "DEFAULT_CHECKPOINT_DIR",
    "FlakyBackend",
    "GUARD_POLICIES",
    "GuardIncident",
    "GuardViolation",
    "SimulationKilled",
    "SolveOutcome",
    "SolverIncident",
    "SolverPolicy",
    "SupervisedSolver",
    "chain_for",
    "checkpoint_path",
    "default_supervisor",
    "load_checkpoint",
    "run_chaos_drill",
    "sanitize_state",
    "sanitize_trace_arrays",
    "save_checkpoint",
    "solve_service",
    "solve_zero",
]
