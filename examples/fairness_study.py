"""Fairness study: the energy-fairness knob and alternative fairness scores.

Sweeps the energy-fairness parameter beta at fixed V and reports how the
allocation moves toward the 40/30/15/15 organizational targets, then
re-runs GreFar with alternative fairness functions (alpha-fair, max-min)
— footnote 5 of the paper notes the analysis carries over.

Run with:  python examples/fairness_study.py
"""

from repro import (
    AlphaFairness,
    CostModel,
    GreFarScheduler,
    JainFairness,
    MaxMinFairness,
    QuadraticFairness,
    Simulator,
    paper_scenario,
)
from repro.analysis import format_table


def main() -> None:
    scenario = paper_scenario(horizon=400, seed=11)
    cluster = scenario.cluster
    measure = CostModel(beta=0.0)  # measure energy & fairness separately

    # ------------------------------------------------------------------
    # Part 1: sweep beta with the paper's quadratic fairness.
    # ------------------------------------------------------------------
    rows = []
    for beta in [0.0, 10.0, 100.0, 300.0]:
        scheduler = GreFarScheduler(cluster, v=7.5, beta=beta)
        result = Simulator(scenario, scheduler, cost_model=measure).run()
        s = result.summary
        rows.append((f"{beta:g}", s.avg_energy_cost, s.avg_fairness, s.avg_total_delay))
    print(
        format_table(
            ["beta", "Avg energy", "Avg fairness (eq. 3)", "Avg delay"],
            rows,
            precision=4,
            title="Sweeping the energy-fairness parameter (V = 7.5)",
        )
    )

    # ------------------------------------------------------------------
    # Part 2: swap the fairness function (footnote 5).
    # ------------------------------------------------------------------
    # Common yardstick regardless of what each scheduler optimizes: the
    # per-slot Jain index of the account allocations, averaged over time.
    jain_measure = CostModel(beta=0.0, fairness=JainFairness())
    rows = []
    for name, fn, beta in [
        ("quadratic (paper)", QuadraticFairness(), 100.0),
        ("alpha-fair (a=1)", AlphaFairness(alpha=1.0), 10.0),
        ("max-min", MaxMinFairness(), 50.0),
    ]:
        scheduler = GreFarScheduler(cluster, v=7.5, beta=beta, fairness=fn)
        result = Simulator(scenario, scheduler, cost_model=jain_measure).run()
        rows.append(
            (name, result.summary.avg_energy_cost, result.summary.avg_fairness)
        )
    print()
    print(
        format_table(
            ["Fairness function", "Avg energy", "Per-slot Jain index"],
            rows,
            precision=4,
            title="Alternative fairness functions under GreFar (V = 7.5)",
        )
    )


if __name__ == "__main__":
    main()
