"""Build a custom heterogeneous deployment from scratch.

Demonstrates the full modelling API on a scenario the paper only
gestures at: data centers operating *multiple generations* of servers,
job types pinned to subsets of sites by data placement, and organization
weights that do not sum to a neat split.

Run with:  python examples/custom_cluster.py
"""

import numpy as np

from repro import (
    Account,
    AvailabilityModel,
    Cluster,
    CosmosWorkload,
    DataCenter,
    GreFarScheduler,
    JobType,
    PriceModel,
    Scenario,
    ServerClass,
    Simulator,
)
from repro.analysis import format_table


def build_cluster() -> Cluster:
    # Three server generations shared across sites: newer generations
    # are faster AND more power-hungry, but win on energy per unit work.
    classes = (
        ServerClass(name="gen-2019", speed=0.8, active_power=1.0),
        ServerClass(name="gen-2021", speed=1.0, active_power=1.1),
        ServerClass(name="gen-2023", speed=1.4, active_power=1.3),
    )
    datacenters = (
        DataCenter(name="oregon", max_servers=[40, 60, 30], location="us-west"),
        DataCenter(name="iowa", max_servers=[80, 20, 0], location="us-central"),
        DataCenter(name="carolina", max_servers=[0, 50, 50], location="us-east"),
    )
    accounts = (
        Account(name="search", fair_share=0.5),
        Account(name="ads", fair_share=0.3),
        Account(name="research", fair_share=0.2),
    )
    job_types = (
        # Search jobs replicate everywhere.
        JobType("search-index", demand=2.0, eligible_dcs=(0, 1, 2), account=0,
                max_arrivals=60, max_route=60, max_service=60.0),
        JobType("search-ml", demand=4.0, eligible_dcs=(0, 2), account=0,
                max_arrivals=30, max_route=30, max_service=30.0),
        # Ads data lives in the central + east regions only.
        JobType("ads-etl", demand=1.5, eligible_dcs=(1, 2), account=1,
                max_arrivals=60, max_route=60, max_service=60.0),
        # Research batch can only run where GPUs... er, new servers are.
        JobType("research-sim", demand=6.0, eligible_dcs=(0, 2), account=2,
                max_arrivals=15, max_route=15, max_service=15.0),
    )
    return Cluster(classes, datacenters, job_types, accounts)


def main() -> None:
    cluster = build_cluster()
    print(cluster.describe())

    rng_scenario = Scenario.generate(
        cluster,
        horizon=400,
        seed=5,
        workload=CosmosWorkload(cluster, mean_total_work=60.0),
        price_model=PriceModel(
            [0.30, 0.22, 0.35],
            daily_amplitude=0.4,
            volatility=0.3,
            mean_reversion=0.25,
        ),
        availability_model=AvailabilityModel(cluster, floor_fraction=0.75),
    )

    rows = []
    for v in [1.0, 10.0, 30.0]:
        scheduler = GreFarScheduler(cluster, v=v, beta=50.0)
        result = Simulator(rng_scenario, scheduler).run()
        s = result.summary
        rows.append(
            (
                f"{v:g}",
                s.avg_energy_cost,
                s.avg_total_delay,
                *[round(w, 1) for w in s.avg_work_per_dc],
            )
        )
    print()
    print(
        format_table(
            ["V", "Avg energy", "Avg delay", "oregon", "iowa", "carolina"],
            rows,
            title="Custom deployment: work placement per site vs V (beta = 50)",
        )
    )

    # Where does each site's energy efficiency land?
    eff_rows = []
    for i, dc in enumerate(cluster.datacenters):
        caps = dc.max_servers @ np.array([c.speed for c in cluster.server_classes])
        best = min(
            (
                c.energy_per_unit_work
                for c, n in zip(cluster.server_classes, dc.max_servers)
                if n > 0
            ),
        )
        eff_rows.append((dc.name, float(caps), best))
    print()
    print(
        format_table(
            ["Site", "Peak capacity", "Best energy/work"],
            eff_rows,
            title="Site characteristics",
        )
    )


if __name__ == "__main__":
    main()
