"""Replay your own trace: CSV in, scheduling comparison out.

The paper's evaluation runs on a real (proprietary) trace; this example
shows the workflow for running the library on *your* data.  It exports
a scenario to plain CSVs (the files you would produce from your own
cluster telemetry), edits the price series on disk — a synthetic
"demand-response event" where one site's prices double for a day — and
reloads the result for a scheduling comparison.

Run with:  python examples/trace_replay.py
"""

import csv
import tempfile
from pathlib import Path

from repro import AlwaysScheduler, GreFarScheduler, Simulator, paper_cluster, paper_scenario
from repro.analysis import format_table
from repro.workloads import load_scenario_csv, save_scenario_csv


def main() -> None:
    cluster = paper_cluster()
    scenario = paper_scenario(horizon=240, seed=17, cluster=cluster)

    with tempfile.TemporaryDirectory() as tmp:
        trace_dir = Path(tmp) / "trace"
        save_scenario_csv(scenario, trace_dir)
        print(f"exported trace to {trace_dir.name}/: "
              f"{sorted(p.name for p in trace_dir.iterdir())}")

        # Edit the CSV as an operator would: double DC#1's price for
        # hours 100-124 (a demand-response event).
        prices_path = trace_dir / "prices.csv"
        with open(prices_path) as handle:
            rows = list(csv.reader(handle))
        for row in rows[1:]:
            slot = int(float(row[0]))
            if 100 <= slot < 124:
                row[1] = str(2.0 * float(row[1]))
        with open(prices_path, "w", newline="") as handle:
            csv.writer(handle).writerows(rows)

        edited = load_scenario_csv(cluster, trace_dir)

    results = []
    for scheduler in (GreFarScheduler(cluster, v=20.0), AlwaysScheduler(cluster)):
        result = Simulator(edited, scheduler).run()
        work = result.metrics.work_per_dc_series()
        event_work_dc1 = float(work[100:124, 0].sum())
        results.append(
            (
                result.summary.scheduler,
                result.summary.avg_energy_cost,
                event_work_dc1,
                result.summary.avg_total_delay,
            )
        )

    print()
    print(
        format_table(
            ["Scheduler", "Avg energy", "DC#1 work during event", "Avg delay"],
            results,
            title="Replayed trace with a demand-response event at DC#1 (hours 100-124)",
        )
    )
    print(
        "\nGreFar routes around the doubled prices during the event without\n"
        "being told about it — the queue/price feedback reacts online."
    )


if __name__ == "__main__":
    main()
