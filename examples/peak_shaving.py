"""Peak shaving with tiered electricity pricing and admission control.

Real utility contracts charge convex, increasing-block rates: the first
megawatts are cheap, the next tier costs more, and demand above the
contracted peak is punitive (Section III-A2's "increasing and convex"
cost).  Under such pricing, *when* matters less than *how much at
once* — the scheduler should spread work to stay inside the cheap
tiers.

This example runs GreFar under linear vs. tiered pricing, shows the
peak-power shaving, and adds a backlog-cap admission policy (the
paper's Section V overload remedy) to keep queues bounded during a
demand storm.

Run with:  python examples/peak_shaving.py
"""

import numpy as np

from repro import (
    BacklogCapAdmission,
    CostModel,
    GreFarScheduler,
    LinearPricing,
    Simulator,
    TieredPricing,
    paper_scenario,
)
from repro.analysis import format_table


def main() -> None:
    scenario = paper_scenario(horizon=400, seed=13)
    cluster = scenario.cluster

    # Two-tier contract per site: the first 60 energy units per hour at
    # the market rate, everything above at 3x.
    tiered = TieredPricing(boundaries=(60.0,), multipliers=(1.0, 3.0))

    # Energy drawn per site-slot = work x (p/s) of the site's server
    # class (each paper site runs one class).
    unit_energy = np.array(
        [cluster.server_classes[i].energy_per_unit_work for i in range(3)]
    )

    rows = []
    overage = {}
    for label, pricing in [("linear", LinearPricing()), ("tiered 3x", tiered)]:
        scheduler = GreFarScheduler(cluster, v=20.0, pricing=pricing)
        # Measure both runs under the *tiered* bill, so the comparison
        # reflects what the utility would actually charge.
        measure = CostModel(beta=0.0, pricing=tiered)
        result = Simulator(scenario, scheduler, cost_model=measure).run()
        energy = result.metrics.work_per_dc_series() * unit_energy[np.newaxis, :]
        # Energy billed in the punitive tier (above 60 per site-slot).
        tier2 = float(np.clip(energy - 60.0, 0.0, None).sum())
        overage[label] = tier2
        rows.append(
            (
                label,
                result.summary.avg_energy_cost,
                tier2,
                result.summary.avg_total_delay,
            )
        )
    print(
        format_table(
            ["Scheduler pricing", "Avg billed cost", "Tier-2 energy", "Avg delay"],
            rows,
            title="GreFar under a two-tier utility contract (billed at tiers)",
        )
    )
    if overage["linear"] > 0:
        shaved = 1.0 - overage["tiered 3x"] / overage["linear"]
        print(f"\ntier-aware scheduling cut punitive-tier energy by {shaved:.0%}")

    # ------------------------------------------------------------------
    # Admission control under genuine overload: a plant half the usual
    # size faces the full workload (offered load > capacity), which is
    # exactly where the paper says to bring in admission control.
    # ------------------------------------------------------------------
    from repro import AvailabilityModel, CosmosWorkload, Scenario, paper_cluster

    small_plant = paper_cluster(server_counts=(60, 80, 30))
    storm = Scenario.generate(
        small_plant,
        horizon=300,
        seed=21,
        workload=CosmosWorkload(small_plant, mean_total_work=150.0),
        availability_model=AvailabilityModel(small_plant, floor_fraction=0.8),
    )
    rows = []
    for label, admission in [
        ("no admission control", None),
        ("backlog cap 400 work", BacklogCapAdmission(max_backlog_work=400.0)),
    ]:
        scheduler = GreFarScheduler(storm.cluster, v=5.0)
        result = Simulator(storm, scheduler, admission=admission).run()
        s = result.summary
        rows.append(
            (
                label,
                s.max_queue_length,
                s.avg_total_delay,
                s.total_dropped_jobs,
            )
        )
    print()
    print(
        format_table(
            ["Policy", "Max queue", "Avg delay", "Dropped jobs"],
            rows,
            title="Overload (offered 150 work/slot, capacity ~120): admission control",
        )
    )
    print(
        "\nWithout admission control the backlog grows without bound (the\n"
        "slackness conditions fail, so Theorem 1's queue bound does not\n"
        "apply); the backlog cap keeps queues and delays bounded by\n"
        "rejecting the overload explicitly."
    )


if __name__ == "__main__":
    main()
