"""Sweep the cost-delay parameter V and map the energy/delay tradeoff.

Theorem 1 promises an O(1/V) cost gap and O(V) queue bound: sweeping V
traces out the tunable frontier between electricity cost and queueing
delay.  This example runs the sweep, prints the frontier, and shows the
analytic queue bound next to the measured maximum queue.

Run with:  python examples/energy_delay_tradeoff.py
"""

import numpy as np

from repro import TheoremConstants, check_slackness, paper_scenario
from repro.analysis import format_table, sweep_v


def main() -> None:
    scenario = paper_scenario(horizon=750, seed=3)
    cluster = scenario.cluster

    slack = check_slackness(cluster, scenario.arrivals, scenario.availability)
    print(
        f"slackness: feasible={slack.feasible}, delta={slack.max_delta:.1f}, "
        f"peak utilization={slack.worst_utilization:.0%}"
    )

    constants = TheoremConstants.from_scenario(
        cluster,
        max_arrivals=scenario.arrivals.max(axis=0),
        price_cap=float(scenario.prices.max()),
    )

    v_values = [0.1, 1.0, 2.5, 7.5, 20.0, 40.0]
    points = sweep_v(scenario, v_values)

    rows = []
    for p in points:
        bound = constants.queue_bound(max(p.v, 1e-3), slack.max_delta)
        rows.append(
            (
                f"{p.v:g}",
                p.avg_energy_cost,
                p.avg_total_delay,
                p.max_queue_length,
                bound,
            )
        )
    print()
    print(
        format_table(
            ["V", "Avg energy", "Avg delay (slots)", "Max queue", "Queue bound O(V)"],
            rows,
            title="Energy/delay frontier (beta = 0)",
        )
    )

    energies = np.array([p.avg_energy_cost for p in points])
    delays = np.array([p.avg_total_delay for p in points])
    print(
        f"\nsweeping V {v_values[0]:g} -> {v_values[-1]:g} cut energy by "
        f"{1 - energies[-1] / energies[0]:.1%} while delay grew "
        f"{delays[-1] / delays[0]:.1f}x — pick the point your SLO allows."
    )


if __name__ == "__main__":
    main()
