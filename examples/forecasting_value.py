"""What is a forecast worth?  GreFar vs model-predictive planning.

The related work the paper contrasts with ([3], [4]) plans ahead from
demand/price predictions.  GreFar's pitch is that its queue/price
feedback needs *no* forecasts at all.  This example quantifies both
sides: a receding-horizon planner with three forecast qualities
(persistence, diurnal prior, oracle) against GreFar at two operating
points — plus the temporal/spatial decomposition of where GreFar's
saving actually comes from.

Run with:  python examples/forecasting_value.py
"""

from repro import (
    AlwaysScheduler,
    GreFarScheduler,
    RecedingHorizonScheduler,
    Simulator,
    paper_scenario,
)
from repro.analysis import format_table
from repro.analysis.decomposition import decompose_energy_saving


def main() -> None:
    scenario = paper_scenario(horizon=500, seed=9)
    cluster = scenario.cluster

    schedulers = [
        GreFarScheduler(cluster, v=20.0),
        GreFarScheduler(cluster, v=60.0),
        RecedingHorizonScheduler(cluster, window=24, replan_every=6,
                                 forecast="persistence"),
        RecedingHorizonScheduler(cluster, window=24, replan_every=6,
                                 forecast="diurnal"),
        RecedingHorizonScheduler(cluster, window=24, replan_every=6,
                                 forecast=scenario),  # oracle
        AlwaysScheduler(cluster),
    ]

    rows = []
    results = {}
    for scheduler in schedulers:
        result = Simulator(scenario, scheduler).run()
        results[scheduler.name] = result
        s = result.summary
        rows.append(
            (s.scheduler, s.avg_energy_cost, s.avg_total_delay,
             result.queues.stats.dc_delay_percentile(0.95))
        )

    print(
        format_table(
            ["Scheduler", "Avg energy", "Avg delay", "p95 DC delay"],
            rows,
            title="Forecast-free feedback vs forecast-based planning (500 h)",
        )
    )

    grefar = results["GreFar(V=60, beta=0)"]
    always = results["Always"]
    decomp = decompose_energy_saving(scenario, grefar, always)
    print(
        f"\nGreFar (V=60) vs Always: {decomp.summary()}\n"
        "\nTakeaways: without any forecast GreFar lands between the\n"
        "persistence and oracle planners; the oracle's extra saving is the\n"
        "price of admission for perfect information, and bad forecasts are\n"
        "worse than no forecasts plus feedback."
    )


if __name__ == "__main__":
    main()
