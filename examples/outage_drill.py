"""Outage drill: take a data center dark mid-run and watch the recovery.

Theorem 1 holds for *arbitrary* state processes, so nothing in GreFar's
guarantee breaks when a whole site disappears — the queue bound
``V*C3/delta`` keeps holding straight through the fault.  This drill
injects a full outage of data center 2 for slots [100, 140) of a
300-slot paper-scenario run:

* at onset, every job queued at the dark site is evicted and re-admitted
  into the central queues with exponential backoff (1, 2, 4, 8 slots);
* while the site is down, GreFar's backpressure routing sends its share
  of the work to the surviving (pricier) sites;
* after the fault clears, the backlog drains back to its pre-fault
  level within a deterministic number of slots.

The ``ResilienceObserver`` measures the transient: recovery time,
backlog overshoot, peak front queue versus the Theorem 1 bound, and the
energy-cost inflation of running on the surviving sites.

Run with:  python examples/outage_drill.py
"""

from repro import (
    AlwaysScheduler,
    FaultInjector,
    FaultSchedule,
    GreFarScheduler,
    ResilienceObserver,
    Simulator,
    TheoremConstants,
    check_slackness,
    paper_scenario,
)
from repro.analysis import format_table

HORIZON = 300
OUTAGE_DC = 1  # "dc2" in the paper's Table I numbering
OUTAGE_START, OUTAGE_DURATION = 100, 40
V = 7.5


def main() -> None:
    scenario = paper_scenario(horizon=HORIZON, seed=0)
    cluster = scenario.cluster
    schedule = FaultSchedule.single_outage(
        dc=OUTAGE_DC, start=OUTAGE_START, duration=OUTAGE_DURATION
    )

    # The eq. (23) queue bound, computed from the unfaulted trace's slack.
    slack = check_slackness(cluster, scenario.arrivals, scenario.availability)
    constants = TheoremConstants.from_scenario(
        cluster, price_cap=float(scenario.prices.max()), beta=0.0
    )
    queue_bound = constants.queue_bound(V, slack.max_delta)

    rows = []
    for scheduler in [
        GreFarScheduler(cluster, v=V, beta=0.0),
        AlwaysScheduler(cluster),
    ]:
        injector = FaultInjector(cluster, schedule)
        observer = ResilienceObserver(cluster, schedule, queue_bound=queue_bound)
        result = Simulator(
            scenario, scheduler, injector=injector, observers=[observer]
        ).run()
        report = observer.report(scheduler.name)
        impact = report.impacts[0]
        work = result.metrics.work_per_dc_series()
        window = slice(OUTAGE_START, OUTAGE_START + OUTAGE_DURATION)
        rows.append(
            (
                scheduler.name,
                impact.recovery_slots if impact.recovered else float("nan"),
                impact.overshoot,
                impact.peak_front_queue,
                impact.cost_inflation,
                result.summary.total_evicted_jobs,
                float(work[window, OUTAGE_DC].sum()),
            )
        )

    print(
        format_table(
            [
                "Scheduler",
                "Recovery slots",
                "Overshoot",
                "Peak front Q",
                "Cost inflation",
                "Evicted",
                "Work at dark site",
            ],
            rows,
            precision=4,
            title=(
                f"Full outage of dc{OUTAGE_DC + 1}, slots "
                f"[{OUTAGE_START}, {OUTAGE_START + OUTAGE_DURATION}) — "
                f"queue bound V*C3/delta = {queue_bound:.3g}"
            ),
        )
    )
    print(
        "\nThe dark site serves exactly zero work during the outage; its share\n"
        "moves to the surviving sites (hence the cost inflation), the front\n"
        "queue stays orders of magnitude below the Theorem 1 bound, and the\n"
        "backlog returns to its pre-fault level shortly after the site heals.\n"
        "Try `python -m repro.cli resilience --compare` for more baselines,\n"
        "other fault kinds (--kind stale_price) and windows."
    )


if __name__ == "__main__":
    main()
