"""Quickstart: run GreFar against the paper's evaluation setup.

Builds the Table I cluster (3 geo-distributed data centers, 4
organizations), generates a Cosmos-like workload with volatile hourly
electricity prices, and compares GreFar against the "Always" baseline
on energy cost, fairness and delay.

Run with:  python examples/quickstart.py
"""

from repro import (
    AlwaysScheduler,
    CostModel,
    GreFarScheduler,
    Simulator,
    paper_scenario,
)
from repro.analysis import format_table


def main() -> None:
    # One shared scenario so the comparison is apples-to-apples.
    scenario = paper_scenario(horizon=500, seed=7)
    cluster = scenario.cluster
    print(cluster.describe())
    print()

    schedulers = [
        GreFarScheduler(cluster, v=7.5, beta=0.0),
        GreFarScheduler(cluster, v=7.5, beta=100.0),
        GreFarScheduler(cluster, v=20.0, beta=0.0),
        AlwaysScheduler(cluster),
    ]

    rows = []
    for scheduler in schedulers:
        result = Simulator(scenario, scheduler, cost_model=CostModel(beta=0.0)).run()
        s = result.summary
        rows.append(
            (
                s.scheduler,
                s.avg_energy_cost,
                s.avg_fairness,
                s.avg_total_delay,
                s.max_queue_length,
            )
        )

    print(
        format_table(
            ["Scheduler", "Avg energy", "Avg fairness", "Avg delay", "Max queue"],
            rows,
            title=f"500-hour comparison on the paper scenario (seed 7)",
        )
    )
    print(
        "\nGreFar trades a bounded increase in delay for lower energy cost;\n"
        "beta > 0 additionally steers the allocation toward the 40/30/15/15\n"
        "fairness targets (and, via eq. (3)'s utilization reward, cuts delay)."
    )


if __name__ == "__main__":
    main()
