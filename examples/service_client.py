"""Drive a live scheduler gateway end to end from the client side.

Spawns ``repro serve`` as a subprocess (small scenario, manual ticks),
submits job batches for both accounts — including one deliberately
oversized batch to show the 422 and a burst that triggers 429
backpressure — ticks a few slots, and prints the placement, queue and
fairness views the gateway serves.  Everything speaks the stdlib
:class:`repro.service.ServiceClient`; no third-party HTTP stack.

Run with:  PYTHONPATH=src python examples/service_client.py

Against an already-running gateway, set ``REPRO_GATEWAY_URL`` instead
(e.g. ``REPRO_GATEWAY_URL=http://127.0.0.1:8080``) and the example
skips spawning its own.
"""

from __future__ import annotations

import os
import subprocess
import sys

from repro.service import ServiceClient, ServiceClientError


def spawn_gateway() -> tuple:
    proc = subprocess.Popen(
        [
            sys.executable,
            "-m",
            "repro",
            "serve",
            "--scenario",
            "small",
            "--v",
            "10.0",
            "--capacity-slots",
            "50",
            "--port",
            "0",
            "--data-dir",
            ".repro_cache/service-example",
        ],
        stdout=subprocess.PIPE,
        text=True,
    )
    line = proc.stdout.readline().strip()  # "listening on http://host:port"
    return proc, ServiceClient(line.split("listening on ", 1)[1])


def main() -> None:
    url = os.environ.get("REPRO_GATEWAY_URL")
    proc = None
    if url:
        client = ServiceClient(url)
    else:
        proc, client = spawn_gateway()

    health = client.health()
    print(f"gateway: {health['scheduler']}, slot {health['next_slot']}")
    for account in client.accounts():
        types = ", ".join(
            f"{jt['name']} (A_max={jt['max_arrivals']})"
            for jt in account["job_types"]
        )
        print(
            f"  account {account['account']} "
            f"(fair share {account['fair_share']:.0%}): {types}"
        )

    # Normal submissions: one batch per account, acknowledged with 202.
    for account, job_type, count in [(0, 0, 20), (1, 1, 4)]:
        ack = client.submit(account, job_type, count)
        print(
            f"accepted {ack['submission_id']}: {count} jobs of type "
            f"{job_type} ({ack['pending_jobs']} pending)"
        )

    # A batch above the per-slot arrival bound is a permanent 422 —
    # no slot could ever absorb it, so the gateway refuses up front.
    try:
        client.submit(0, 0, 51)
    except ServiceClientError as exc:
        print(f"oversized batch refused: {exc.status} {exc.code}")

    # Hammer one account until the token bucket pushes back with a 429
    # + Retry-After; submit(wait=True) would sleep it out instead.
    refused = 0
    for _ in range(100):
        try:
            client.submit(1, 1, 5)
        except ServiceClientError as exc:
            if exc.status != 429:
                raise
            refused += 1
            print(
                f"backpressure after burst: 429 {exc.code}, "
                f"Retry-After {exc.retry_after:.0f}s"
            )
            break
    if not refused:
        print("burst fully absorbed (rate limit not reached)")

    # Advance the scheduler and look at what it did with the work.
    client.tick(3)
    for record in client.slots():
        print(
            f"slot {record['slot']}: arrivals {record['arrivals']}, "
            f"served {record['served_jobs']:.0f}, "
            f"energy {record['energy_cost']:.2f}, "
            f"placement {['%.1f' % w for w in record['work_per_dc']]}"
        )

    fairness = client.fairness()
    for account, (work, share) in enumerate(
        zip(fairness["cumulative_work"], fairness["fair_shares"])
    ):
        print(
            f"account {account}: {work:.1f} work served "
            f"(entitled share {share:.0%})"
        )

    summary = client.stats()
    print(
        f"after {summary['horizon']} slots: "
        f"avg energy {summary['avg_energy_cost']:.2f}, "
        f"{summary['total_served_jobs']:.0f} jobs served"
    )

    if proc is not None:
        client.shutdown()
        proc.wait(timeout=15)
        print("gateway shut down cleanly (final checkpoint written)")


if __name__ == "__main__":
    main()
