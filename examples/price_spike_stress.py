"""Stress test: adversarial, non-stationary prices and bursty arrivals.

GreFar's guarantee (Theorem 1) holds for *arbitrary* state processes —
no stationarity, no known statistics.  This example hand-crafts a nasty
scenario: a multi-day price spike at every site simultaneously (a
regional heat wave), a demand surge in the middle of it, and a price
collapse afterwards.  GreFar rides through: it defers what it can,
queues stay bounded, and the backlog drains the moment prices collapse.

Run with:  python examples/price_spike_stress.py
"""

import numpy as np

from repro import (
    AlwaysScheduler,
    GreFarScheduler,
    Scenario,
    Simulator,
    small_cluster,
)
from repro.analysis import format_table
from repro.workloads import AvailabilityModel


def build_scenario(horizon: int = 300) -> Scenario:
    cluster = small_cluster()
    rng = np.random.default_rng(42)

    # Prices: calm -> 4x spike for 60 slots -> collapse to near-zero.
    prices = np.full((horizon, 2), 0.4)
    prices[:, 1] = 0.5
    prices[100:160] *= 4.0  # the heat wave
    prices[160:220] *= 0.15  # the collapse
    prices += rng.normal(0.0, 0.02, size=prices.shape)
    prices = np.clip(prices, 0.01, None)

    # Arrivals: steady trickle plus a surge *during* the spike.
    arrivals = rng.poisson(3.0, size=(horizon, 2))
    arrivals[110:140, 0] += 6
    arrivals = np.minimum(arrivals, 50)

    availability = AvailabilityModel(cluster, floor_fraction=0.9).generate(horizon, rng)
    return Scenario(
        cluster=cluster,
        arrivals=arrivals,
        availability=availability,
        prices=prices,
    )


def main() -> None:
    scenario = build_scenario()
    cluster = scenario.cluster

    rows = []
    spike = slice(100, 160)
    collapse = slice(160, 220)
    for scheduler in [
        GreFarScheduler(cluster, v=15.0),
        AlwaysScheduler(cluster),
    ]:
        result = Simulator(scenario, scheduler).run()
        work = result.metrics.work_per_dc_series().sum(axis=1)
        rows.append(
            (
                result.summary.scheduler,
                result.summary.avg_energy_cost,
                float(work[spike].mean()),
                float(work[collapse].mean()),
                result.summary.max_queue_length,
                result.summary.avg_total_delay,
            )
        )

    print(
        format_table(
            [
                "Scheduler",
                "Avg energy",
                "Work during spike",
                "Work after collapse",
                "Max queue",
                "Avg delay",
            ],
            rows,
            title="Heat-wave stress: 4x price spike (slots 100-160), collapse after",
        )
    )
    print(
        "\nGreFar throttles work during the spike and catches up when prices\n"
        "collapse; Always burns money straight through the spike.  Queues stay\n"
        "bounded throughout (Theorem 1 needs no stationarity assumptions)."
    )


if __name__ == "__main__":
    main()
