"""Benchmark: regenerate Fig. 2 (energy and delay versus V, beta = 0).

Shape checks (Section VI-B1): average energy cost decreases in V while
the average delays in DC#1 and DC#2 increase in V — the four curves are
ordered; V=0.1 behaves like "Always" (delay ~1 slot).
"""

import numpy as np

from repro.experiments import fig2_v_sweep

from conftest import run_cached


def _result(benchmark, bench_scenario):
    return run_cached(benchmark, "fig2", fig2_v_sweep.run, scenario=bench_scenario)


def test_fig2_energy_decreases_in_v(benchmark, bench_scenario):
    result = _result(benchmark, bench_scenario)
    energy = result.final_energy
    # Monotone across the paper's four V values.
    assert energy[0] >= energy[1] >= energy[2] >= energy[3]
    # And the spread is material: V=20 saves at least 5% over V=0.1.
    assert energy[3] < 0.95 * energy[0]


def test_fig2_delay_increases_in_v(benchmark, bench_scenario):
    result = _result(benchmark, bench_scenario)
    for delays in (result.final_delay_dc1, result.final_delay_dc2):
        assert delays[0] <= delays[1] <= delays[2] <= delays[3]
        # V=0.1 serves eagerly: ~1 slot in the data center queue.
        assert delays[0] < 1.3
        # V=20 visibly trades delay for cost.
        assert delays[3] > 1.8


def test_fig2_running_averages_stabilize(benchmark, bench_scenario):
    """The cumulative averages settle: late values move slowly."""
    result = _result(benchmark, bench_scenario)
    for series in result.energy_series:
        tail = series[-100:]
        assert np.ptp(tail) < 0.1 * abs(np.mean(tail))
