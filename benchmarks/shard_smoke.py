"""Shard smoke drill: sharded multi-DC run equivalence and throughput.

Runs the wide multi-DC scenario twice — once on the serial
:class:`GreFarScheduler`, once on a :class:`ShardController` with
``verify="assert"`` — and audits:

* **equivalence** — the beta = 0 sharded run must match the serial run
  metric for metric (bit-identity is asserted every slot by the verify
  mode; any divergence raises before the comparison even runs);
* **throughput** — slots/second for both paths is reported, and the
  sharded path must complete within :data:`MAX_SLOWDOWN` of serial
  (scatter/gather IPC costs real time on small problems; the bound
  catches pathological supervision overhead, not a speedup claim);
* **supervision** — a worker-kill drill mid-run must survive: every
  slot completed, the crash and respawn recorded as incidents.

Used by the CI ``chaos`` job (it greps for ``equivalence OK``); exits
0 on success, 1 on any failed check.
"""

from __future__ import annotations

import sys
import time

from repro.core.grefar import GreFarScheduler
from repro.distrib import ShardController, run_shard_drill
from repro.scenarios import wide_scenario
from repro.simulation.simulator import Simulator

HORIZON = 60
DCS = 6
SHARDS = 3
V = 7.5

#: Sharded wall-clock must stay within this factor of serial.  The wide
#: scenario's per-slot solve is tiny, so IPC dominates; the bound only
#: guards against supervision pathologies (per-slot respawns, leaked
#: waits), not marketing.
MAX_SLOWDOWN = 25.0


def _metrics(summary) -> dict:
    payload = summary.as_dict()
    payload.pop("scheduler", None)
    return payload


def main() -> int:
    failures = []
    scenario = wide_scenario(horizon=HORIZON, seed=0, num_datacenters=DCS)
    print(
        f"wide scenario: {DCS} data centers, {scenario.cluster.num_job_types} "
        f"job types, {HORIZON} slots"
    )

    start = time.perf_counter()
    serial = Simulator(
        scenario, GreFarScheduler(scenario.cluster, v=V), validate=True
    ).run(HORIZON)
    serial_elapsed = time.perf_counter() - start
    print(f"serial : {HORIZON / serial_elapsed:8.1f} slots/s ({serial_elapsed:.2f}s)")

    controller = ShardController(
        scenario.cluster, num_shards=SHARDS, v=V, verify="assert"
    )
    try:
        start = time.perf_counter()
        sharded = Simulator(scenario, controller, validate=True).run(HORIZON)
        sharded_elapsed = time.perf_counter() - start
    finally:
        controller.shutdown()
    print(
        f"sharded: {HORIZON / sharded_elapsed:8.1f} slots/s "
        f"({sharded_elapsed:.2f}s, {SHARDS} shards)"
    )

    if _metrics(sharded.summary) == _metrics(serial.summary):
        print(
            f"equivalence OK: {HORIZON} sharded slots bit-identical to "
            "serial (verify=assert checked every slot)"
        )
    else:
        failures.append("sharded summary diverged from serial")
    if controller.incident_count != 0:
        failures.append(
            f"healthy run recorded {controller.incident_count} incident(s)"
        )
    if sharded_elapsed > MAX_SLOWDOWN * serial_elapsed:
        failures.append(
            f"sharded run took {sharded_elapsed:.2f}s vs serial "
            f"{serial_elapsed:.2f}s (> {MAX_SLOWDOWN:g}x)"
        )

    report = run_shard_drill(
        scenario,
        num_shards=SHARDS,
        v=V,
        kind="kill",
        slot=HORIZON // 3,
        horizon=HORIZON,
    )
    print(report.render())
    if report.survived:
        print(
            "drill OK: worker SIGKILLed mid-run, every slot completed, "
            f"{report.respawns} respawn(s) recorded"
        )
    else:
        failures.append("worker-kill drill did not survive")

    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
