"""Gateway smoke drill: sustained submission load with exact accounting.

Starts a real :class:`ServiceHTTPServer` on an ephemeral port, hammers
``POST /v1/jobs`` from several persistent-connection worker threads,
ticks the scheduler, and then audits the books:

* **throughput** — the gateway must sustain at least
  :data:`MIN_RATE` submission attempts per second end to end
  (HTTP parse, rate limit, intake, write-ahead log, reply);
* **accounting** — every attempt is answered 202 or 429, the two
  client-side tallies sum to the attempt count, and the server's own
  counters agree exactly — backpressure refuses loudly, it never drops
  silently;
* **equivalence** — after draining, replaying the accepted-arrival log
  through the offline ``Simulator`` reproduces the live per-slot
  metrics bit-identically;
* **lifecycle** — ``POST /v1/admin/shutdown`` stops the server and
  leaves a final checkpoint.

Used by the CI ``service`` job (it greps for ``accounting OK``); exits
0 on success, 1 on any failed check.
"""

from __future__ import annotations

import http.client
import json
import socket
import sys
import tempfile
import threading
import time

from repro.core.objective import CostModel
from repro.schedulers import build_scheduler
from repro.service import (
    SchedulerService,
    ServiceClient,
    ServiceConfig,
    ServiceHTTPServer,
)
from repro.simulation.simulator import Simulator
from repro.tools import tsan

#: Minimum sustained submission attempts per second (the ISSUE floor is
#: 1k/s; stdlib ThreadingHTTPServer with keep-alive does far more).
MIN_RATE = 1000.0

WORKERS = 8
ATTEMPTS_PER_WORKER = 500


def _worker(port: int, worker_id: int, results: list) -> None:
    """One persistent connection submitting single-job batches."""
    conn = http.client.HTTPConnection("127.0.0.1", port, timeout=30)
    conn.connect()
    # Mirror the server's Nagle opt-out; without it every request eats
    # a delayed-ACK round trip and the drill measures the kernel timer,
    # not the gateway.
    conn.sock.setsockopt(socket.IPPROTO_TCP, socket.TCP_NODELAY, 1)
    accepted = rejected = 0
    account = worker_id % 2  # small cluster: account m owns job type m
    body = json.dumps({"account": account, "job_type": account, "count": 1})
    for _ in range(ATTEMPTS_PER_WORKER):
        conn.request(
            "POST", "/v1/jobs", body, {"Content-Type": "application/json"}
        )
        reply = conn.getresponse()
        reply.read()  # drain so the connection can be reused
        if reply.status == 202:
            accepted += 1
        elif reply.status == 429:
            rejected += 1
        else:
            results.append(("error", worker_id, reply.status))
            conn.close()
            return
    conn.close()
    results.append(("ok", accepted, rejected))


def main() -> int:
    failures = []
    with tempfile.TemporaryDirectory(prefix="repro-service-smoke-") as tmp:
        config = ServiceConfig(
            scenario_kind="small",
            capacity_slots=100,
            scheduler="grefar",
            scheduler_kwargs={"v": 10.0},
            intake_capacity=500,
            rate=200.0,  # per-account jobs/s: low enough to force 429s
            burst=100.0,
            checkpoint_every=10,
            data_dir=tmp,
        )
        service = SchedulerService(config)
        server = ServiceHTTPServer(("127.0.0.1", 0), service)
        thread = threading.Thread(
            target=server.serve_forever,
            kwargs={"poll_interval": 0.05},
            daemon=True,
        )
        thread.start()
        port = server.server_address[1]
        client = ServiceClient(f"http://127.0.0.1:{port}", timeout=30.0)
        print(f"gateway up on port {port} ({client.health()['scheduler']})")

        results: list = []
        workers = [
            threading.Thread(target=_worker, args=(port, i, results))
            for i in range(WORKERS)
        ]
        start = time.perf_counter()
        for worker in workers:
            worker.start()
        for worker in workers:
            worker.join()
        elapsed = time.perf_counter() - start

        errors = [r for r in results if r[0] == "error"]
        if errors:
            failures.append(f"unexpected HTTP statuses from workers: {errors}")
        accepted = sum(r[1] for r in results if r[0] == "ok")
        rejected = sum(r[2] for r in results if r[0] == "ok")
        attempted = WORKERS * ATTEMPTS_PER_WORKER
        rate = attempted / elapsed
        print(
            f"{attempted} attempts in {elapsed:.2f}s ({rate:.0f} submissions/s): "
            f"{accepted} accepted (202), {rejected} refused (429)"
        )
        if rate < MIN_RATE:
            failures.append(
                f"throughput {rate:.0f}/s below the {MIN_RATE:.0f}/s floor"
            )
        if accepted == 0 or rejected == 0:
            failures.append(
                "drill must exercise both acceptance and backpressure "
                f"(got {accepted} / {rejected})"
            )

        # -- accounting: client-side tallies == server-side counters ----
        counters = client.metrics()["service"]
        server_rejected = (
            counters["rejected_rate_limited"] + counters["rejected_backpressure"]
        )
        if accepted + rejected != attempted:
            failures.append(
                f"accounting broken: {accepted} + {rejected} != {attempted}"
            )
        if counters["accepted_jobs"] != accepted:  # count=1 per submission
            failures.append(
                f"server accepted {counters['accepted_jobs']} != client {accepted}"
            )
        if server_rejected != rejected:
            failures.append(
                f"server rejected {server_rejected} != client {rejected}"
            )
        if not failures:
            print(
                "accounting OK: every attempt answered 202 or 429 and the "
                "server counters match the client tallies exactly"
            )

        # -- drain, then prove offline equivalence -----------------------
        while client.health()["pending_jobs"] > 0:
            client.tick(1)
        client.tick(1)  # one empty slot for good measure
        completed = client.health()["next_slot"]
        print(f"drained the intake in {completed} slots")

        state = service.state
        scenario = state.replay_scenario()
        result = Simulator(
            scenario,
            build_scheduler("grefar", scenario.cluster, v=10.0),
            cost_model=CostModel(beta=config.cost_beta),
        ).run()
        if (
            result.metrics.energy_cost == state.metrics.energy_cost
            and result.metrics.fairness == state.metrics.fairness
            and result.metrics.served_jobs == state.metrics.served_jobs
            and result.metrics.queue_total == state.metrics.queue_total
        ):
            print(
                f"replay OK: {completed} live slots match the offline "
                "Simulator bit for bit"
            )
        else:
            failures.append("offline replay diverged from the live slot records")

        # -- graceful shutdown through the admin endpoint ---------------
        client.shutdown()
        thread.join(timeout=15)
        if thread.is_alive():
            failures.append("server thread did not stop after /v1/admin/shutdown")
        server.server_close()
        if config.checkpointer().load() is None:
            failures.append("shutdown left no final checkpoint behind")
        else:
            print("shutdown OK: server stopped and left a final checkpoint")

        # -- lock/race sanitizer audit (REPRO_TSAN=1 runs only) ---------
        if tsan.enabled():
            violations = tsan.reports()
            for finding in violations:
                failures.append(f"sanitizer: {finding.render()}")
            if not violations:
                print(
                    "tsan OK: zero lock-order/guarded-field violations "
                    "under concurrent load"
                )

    for failure in failures:
        print(f"FAIL: {failure}")
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
