"""Benchmark: regenerate Fig. 4 (GreFar versus "Always").

Shape checks (Section VI-B3): GreFar incurs lower energy cost and
better fairness than Always at the expense of increased average delay;
Always's data center delay is ~1 slot.
"""

from repro.experiments import fig4_vs_always

from conftest import run_cached


def test_fig4_grefar_beats_always_on_cost_and_fairness(benchmark, bench_scenario):
    result = run_cached(benchmark, "fig4", fig4_vs_always.run, scenario=bench_scenario)
    assert result.grefar_energy[1] < result.always_energy[1]
    assert result.grefar_fairness[1] > result.always_fairness[1]


def test_fig4_delay_tradeoff(benchmark, bench_scenario):
    result = run_cached(benchmark, "fig4", fig4_vs_always.run, scenario=bench_scenario)
    # Always schedules in the slot after arrival.
    assert result.always_delay_dc1[1] < 1.2
    # GreFar pays with delay.
    assert result.grefar_delay_dc1[1] > result.always_delay_dc1[1]
