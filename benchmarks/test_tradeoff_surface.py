"""Benchmark: the (V, beta) control surface (the "tunable system" claim).

Shape checks across the grid: energy falls along the V axis at every
beta; delay rises along the V axis at every beta; fairness (weakly)
improves along the beta axis at the larger V values, where deferral
gives the fairness term room to work.
"""

import numpy as np

from repro.experiments import tradeoff_surface

from conftest import run_once


_CACHE = {}


def _surface(benchmark, bench_scenario):
    """Compute the surface once per session; later tests time the cache hit."""

    def compute():
        key = id(bench_scenario)
        if key not in _CACHE:
            _CACHE[key] = tradeoff_surface.run(
                scenario=bench_scenario,
                v_grid=(0.5, 7.5, 30.0),
                beta_grid=(0.0, 100.0, 300.0),
            )
        return _CACHE[key]

    return run_once(benchmark, compute)


def test_energy_falls_along_v(benchmark, bench_scenario):
    surface = _surface(benchmark, bench_scenario)
    for bi in range(len(surface.beta_grid)):
        column = surface.energy[:, bi]
        assert column[-1] < column[0], (
            f"beta={surface.beta_grid[bi]}: energy {column} not falling in V"
        )


def test_delay_rises_along_v(benchmark, bench_scenario):
    surface = _surface(benchmark, bench_scenario)
    for bi in range(len(surface.beta_grid)):
        column = surface.delay[:, bi]
        assert column[-1] > column[0]


def test_fairness_improves_along_beta_at_high_v(benchmark, bench_scenario):
    surface = _surface(benchmark, bench_scenario)
    high_v = surface.fairness[-1, :]  # largest V row
    assert high_v[-1] >= high_v[0]
    # And the surface is finite/valid everywhere.
    assert np.all(np.isfinite(surface.energy))
    assert np.all(surface.fairness <= 0)
