"""Benchmark: paper shapes are seed-robust, with bootstrap CIs.

A reproduction that only holds at one seed is a coincidence.  This
bench re-checks the two headline comparisons across several seeds with
paired bootstrap confidence intervals:

* GreFar (V=20) saves energy over Always — CI on the difference lies
  below zero;
* the V-tradeoff direction (delay at V=20 exceeds delay at V=0.1)
  holds at every seed.
"""


from repro.analysis.stats import paired_comparison
from repro.core.grefar import GreFarScheduler
from repro.scenarios import paper_scenario
from repro.schedulers import AlwaysScheduler
from repro.simulation.simulator import Simulator

SEEDS = (0, 1, 2, 3)
HORIZON = 300


def _energy_pair(seed: int):
    scn = paper_scenario(horizon=HORIZON, seed=seed)
    grefar = Simulator(scn, GreFarScheduler(scn.cluster, v=20.0)).run()
    always = Simulator(scn, AlwaysScheduler(scn.cluster)).run()
    return grefar.summary.avg_energy_cost, always.summary.avg_energy_cost


def _delay_pair(seed: int):
    scn = paper_scenario(horizon=HORIZON, seed=seed)
    slow = Simulator(scn, GreFarScheduler(scn.cluster, v=20.0)).run()
    fast = Simulator(scn, GreFarScheduler(scn.cluster, v=0.1)).run()
    return slow.summary.avg_total_delay, fast.summary.avg_total_delay


def test_energy_saving_significant_across_seeds(benchmark):
    result = benchmark.pedantic(
        paired_comparison,
        args=(_energy_pair, SEEDS),
        kwargs={"metric": "avg_energy_cost"},
        rounds=1,
        iterations=1,
    )
    assert result.mean_difference < 0
    assert result.a_wins, (
        f"GreFar-minus-Always CI [{result.ci_low:.3f}, {result.ci_high:.3f}] "
        "does not exclude zero"
    )


def test_delay_tradeoff_holds_at_every_seed(benchmark):
    result = benchmark.pedantic(
        paired_comparison,
        args=(_delay_pair, SEEDS),
        kwargs={"metric": "avg_total_delay"},
        rounds=1,
        iterations=1,
    )
    # V=20 delay minus V=0.1 delay is positive for every seed.
    assert all(d > 0 for d in result.differences)
