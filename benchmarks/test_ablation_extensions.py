"""Ablations of the model extensions: parallelism, memory, forecasts.

Each extension must change behaviour in its predicted direction:
parallelism caps stretch job completion across slots; memory caps
throttle memory-hungry mixes; MPC forecast quality orders the planner's
energy (oracle <= diurnal <= persistence on diurnal prices).
"""

import numpy as np
import pytest

from repro.model.cluster import Cluster
from repro.model.datacenter import DataCenter
from repro.model.job import Account, JobType
from repro.model.server import ServerClass
from repro.scenarios import paper_scenario
from repro.schedulers import AlwaysScheduler, RecedingHorizonScheduler
from repro.simulation.simulator import Simulator
from repro.simulation.trace import Scenario


def _one_site_cluster(parallelism=None, memory=0.0, mem_cap=float("inf")) -> Cluster:
    return Cluster(
        server_classes=(ServerClass(name="s", speed=1.0, active_power=0.6),),
        datacenters=(
            DataCenter(name="d", max_servers=[40], memory_capacity=mem_cap),
        ),
        job_types=(
            JobType(
                name="j",
                demand=4.0,
                eligible_dcs=(0,),
                account=0,
                max_parallelism=parallelism,
                memory=memory,
            ),
        ),
        accounts=(Account(name="a", fair_share=1.0),),
    )


def _run_one_site(cluster, horizon=120, seed=0):
    rng = np.random.default_rng(seed)
    scn = Scenario(
        cluster=cluster,
        arrivals=rng.integers(0, 3, size=(horizon, 1)).astype(float),
        availability=np.full((horizon, 1, 1), 40.0),
        prices=rng.uniform(0.2, 0.8, size=(horizon, 1)),
    )
    return Simulator(scn, AlwaysScheduler(cluster), validate=True).run()


def test_parallelism_cap_increases_delay(benchmark):
    def run_both():
        free = _run_one_site(_one_site_cluster(parallelism=None))
        capped = _run_one_site(_one_site_cluster(parallelism=2.0))
        return free, capped

    free, capped = benchmark.pedantic(run_both, rounds=1, iterations=1)
    # A 4-work job on <= 2 unit-speed servers needs >= 2 slots.
    assert capped.summary.avg_dc_delay[0] > free.summary.avg_dc_delay[0]
    assert free.summary.avg_dc_delay[0] == pytest.approx(1.0, abs=0.2)


def test_memory_cap_increases_delay(benchmark):
    def run_both():
        loose = _run_one_site(_one_site_cluster(memory=8.0, mem_cap=1e9))
        tight = _run_one_site(_one_site_cluster(memory=8.0, mem_cap=16.0))
        return loose, tight

    loose, tight = benchmark.pedantic(run_both, rounds=1, iterations=1)
    # At most 2 jobs in memory at once: bursts queue up.
    assert tight.summary.avg_dc_delay[0] >= loose.summary.avg_dc_delay[0]


def test_forecast_quality_orders_mpc_energy(benchmark):
    scenario = paper_scenario(horizon=300, seed=1)

    def run_all():
        energies = {}
        for label, forecast in [
            ("oracle", scenario),
            ("diurnal", "diurnal"),
            ("persistence", "persistence"),
        ]:
            scheduler = RecedingHorizonScheduler(
                scenario.cluster, window=24, replan_every=6, forecast=forecast
            )
            result = Simulator(scenario, scheduler).run()
            energies[label] = result.summary.avg_energy_cost
        return energies

    energies = benchmark.pedantic(run_all, rounds=1, iterations=1)
    # Perfect information never hurts; a diurnal prior beats flat
    # persistence on diurnally-structured prices (with slack for noise).
    assert energies["oracle"] <= energies["diurnal"] * 1.05
    assert energies["diurnal"] <= energies["persistence"] * 1.10
