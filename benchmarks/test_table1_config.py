"""Benchmark: regenerate Table I (server config and electricity prices).

Shape checks: exact Table I speeds/powers; measured average prices near
the paper means; average energy cost per unit work ordered
DC#2 < DC#1 < DC#3 (the ordering that drives the work distribution).
"""

import numpy as np
import pytest

from repro.experiments import table1

from conftest import run_once


def test_table1_rows(benchmark):
    result = run_once(benchmark, table1.run, horizon=2000, seed=0)

    np.testing.assert_allclose(result.speeds, [1.00, 0.75, 1.15])
    np.testing.assert_allclose(result.powers, [1.00, 0.60, 1.20])

    # Measured average prices within 20% of the Table I values.
    np.testing.assert_allclose(result.avg_prices, [0.392, 0.433, 0.548], rtol=0.2)

    # Cost-per-unit-work ordering: DC#2 cheapest, DC#3 most expensive.
    costs = result.cost_per_unit_work
    assert costs[1] < costs[0] < costs[2]

    # And near the paper's derived column.
    np.testing.assert_allclose(costs, [0.392, 0.346, 0.572], rtol=0.2)


def test_table1_cost_column_is_price_times_efficiency(benchmark):
    result = run_once(benchmark, table1.run, horizon=500, seed=1)
    for i in range(3):
        assert result.cost_per_unit_work[i] == pytest.approx(
            result.avg_prices[i] * result.powers[i] / result.speeds[i]
        )
