"""Benchmark: delay tails per V (the distribution behind Fig. 2's means).

Shape checks: every percentile (p50/p95/p99) grows with V; tails stay
bounded (the O(V) queue bound at work); the mean sits between p50 and
p99.
"""

from repro.experiments import delay_distribution

from conftest import run_cached


def _result(benchmark, bench_scenario):
    return run_cached(
        benchmark, "delays", delay_distribution.run, scenario=bench_scenario
    )


def test_percentiles_grow_with_v(benchmark, bench_scenario):
    result = _result(benchmark, bench_scenario)
    for series in (result.p50, result.p95, result.p99):
        assert series[-1] >= series[0]
    # The headline tradeoff is visible in the tail, not just the mean.
    assert result.p95[-1] > result.p95[0]


def test_percentile_ordering_and_bounded_tails(benchmark, bench_scenario):
    result = _result(benchmark, bench_scenario)
    for i in range(len(result.v_values)):
        assert result.p50[i] <= result.p95[i] <= result.p99[i]
        # Deferral is systematic, not a lottery: p99 within a moderate
        # multiple of the mean at every operating point.
        assert result.p99[i] <= 12 * max(result.mean[i], 1.0)
