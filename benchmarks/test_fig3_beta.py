"""Benchmark: regenerate Fig. 3 (impact of the energy-fairness parameter).

Shape checks (Section VI-B2): beta = 100 achieves a clearly higher
fairness score than beta = 0 with only a marginal energy increase, and
— the quadratic score's utilization side-effect — a *lower* average
delay in DC#1.
"""

from repro.experiments import fig3_beta

from conftest import run_cached


def test_fig3_fairness_improves_with_beta(benchmark, bench_scenario):
    result = run_cached(benchmark, "fig3", fig3_beta.run, scenario=bench_scenario)
    f0, f100 = result.final_fairness
    assert f100 > f0
    # Energy increases only marginally (< 5%).
    e0, e100 = result.final_energy
    assert e100 < 1.05 * e0


def test_fig3_delay_drops_with_beta(benchmark, bench_scenario):
    result = run_cached(benchmark, "fig3", fig3_beta.run, scenario=bench_scenario)
    d0, d100 = result.final_delay_dc1
    assert d100 < d0


def test_fig3_fairness_scores_in_valid_range(benchmark, bench_scenario):
    """Quadratic scores lie in [-sum max(gamma, 1-gamma)^2, 0]."""
    result = run_cached(benchmark, "fig3", fig3_beta.run, scenario=bench_scenario)
    for f in result.final_fairness:
        assert -1.0 < f <= 0.0
