"""Benchmark: empirical O(1/V) convergence toward the lookahead optimum.

Shape checks: the measured cost gap to the T-step lookahead policy is
positive (GreFar cannot beat full information), strictly shrinks along
a geometric V ladder, and the fitted ``a + b/V`` slope is positive.
"""

from repro.experiments import convergence

from conftest import run_cached


def _result(benchmark):
    return run_cached(
        benchmark,
        "convergence",
        convergence.run,
        horizon=480,
        lookahead=24,
        seed=0,
    )


def test_gap_monotone_decreasing(benchmark):
    result = _result(benchmark)
    assert result.gap_monotone_decreasing


def test_gaps_positive(benchmark):
    result = _result(benchmark)
    assert all(g > -1e-6 for g in result.gaps)


def test_fit_slope_positive(benchmark):
    result = _result(benchmark)
    assert result.fit_slope > 0
    # The spread must be material: V=64 closes at least 30% of V=2's gap.
    assert result.gaps[-1] < 0.7 * result.gaps[0]


def test_decomposition_attributes_grefar_saving(benchmark):
    """Companion check: at high V most of GreFar's saving vs Always is
    temporal — the mechanism the paper's Fig. 5 illustrates."""
    from repro.analysis.decomposition import decompose_energy_saving
    from repro.core.grefar import GreFarScheduler
    from repro.scenarios import paper_scenario
    from repro.schedulers import AlwaysScheduler
    from repro.simulation.simulator import Simulator

    def compute():
        scenario = paper_scenario(horizon=400, seed=0)
        grefar = Simulator(
            scenario, GreFarScheduler(scenario.cluster, v=40.0)
        ).run()
        always = Simulator(scenario, AlwaysScheduler(scenario.cluster)).run()
        return decompose_energy_saving(scenario, grefar, always)

    decomp = benchmark.pedantic(compute, rounds=1, iterations=1)
    assert decomp.temporal_saving > 0
    assert decomp.total_saving > 0
