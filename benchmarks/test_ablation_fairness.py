"""Ablation: fairness-function choice (footnote 5).

Runs GreFar with the paper's quadratic score and the alternates on the
same scenario, measuring every run with the same yardsticks.  Shape
checks: every variant improves its own objective over beta = 0, and the
quadratic variant's utilization side-effect (lower delay) is specific
to it by design.
"""

import pytest

from repro.core.grefar import GreFarScheduler
from repro.core.objective import CostModel
from repro.fairness import AlphaFairness, MaxMinFairness, QuadraticFairness
from repro.scenarios import small_scenario
from repro.simulation.simulator import Simulator


@pytest.fixture(scope="module")
def scenario():
    return small_scenario(horizon=250, seed=2)


def _run(scenario, fairness=None, beta=0.0, v=10.0):
    scheduler = GreFarScheduler(
        scenario.cluster, v=v, beta=beta, fairness=fairness or QuadraticFairness()
    )
    # Measure with the paper's quadratic score in all cases.
    return Simulator(scenario, scheduler, cost_model=CostModel(beta=0.0)).run()


def test_quadratic_fairness_run(benchmark, scenario):
    result = benchmark.pedantic(
        _run, args=(scenario, QuadraticFairness(), 100.0), rounds=1, iterations=1
    )
    baseline = _run(scenario, beta=0.0)
    assert result.summary.avg_fairness >= baseline.summary.avg_fairness - 1e-6


def test_alpha_fairness_run(benchmark, scenario):
    result = benchmark.pedantic(
        _run, args=(scenario, AlphaFairness(alpha=1.0), 5.0), rounds=1, iterations=1
    )
    # Alpha-fair drives utilization up: it must serve at least as much
    # work as the fairness-blind run.
    baseline = _run(scenario, beta=0.0)
    assert (
        result.summary.total_served_jobs >= baseline.summary.total_served_jobs - 1e-6
    )


def test_maxmin_fairness_run(benchmark, scenario):
    result = benchmark.pedantic(
        _run, args=(scenario, MaxMinFairness(), 20.0), rounds=1, iterations=1
    )
    assert result.summary.horizon == scenario.horizon
    # Max-min pushes the worst-off account up relative to beta = 0.
    assert result.summary.avg_fairness >= _run(scenario).summary.avg_fairness - 0.05
