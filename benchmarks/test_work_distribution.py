"""Benchmark: the Section VI-B1 in-text work-distribution result.

Shape check: GreFar sends more work to sites with lower average energy
cost per unit work — ordering DC#2 > DC#1 > DC#3 (Table I costs
0.346 < 0.392 < 0.572), as in the paper's 48.5 / 34.0 / 14.8 split.
"""

from repro.experiments import work_distribution

from conftest import run_cached


def test_work_follows_inverse_cost_ordering(benchmark, bench_scenario):
    result = run_cached(benchmark, "work", work_distribution.run, scenario=bench_scenario)
    assert result.ordering_matches_cost
    w1, w2, w3 = result.avg_work_per_dc
    assert w2 > w1 > w3


def test_expensive_site_gets_minority_share(benchmark, bench_scenario):
    result = run_cached(benchmark, "work", work_distribution.run, scenario=bench_scenario)
    total = sum(result.avg_work_per_dc)
    # DC#3's share stays a clear minority (paper: ~15%).
    assert result.avg_work_per_dc[2] / total < 0.30
