"""Benchmark: regenerate Fig. 5 (one-day schedule snapshot in DC #1).

Shape check: GreFar's scheduled work anti-correlates with DC#1's price
relative to Always — Always schedules blindly through price peaks, so
its price/work correlation sits well above GreFar's (the arrival
process itself is positively correlated with price through the shared
diurnal cycle, hence the *relative* check).
"""

import numpy as np

from repro.experiments import fig5_snapshot

from conftest import run_once


def test_fig5_grefar_avoids_expensive_hours(benchmark):
    # Average the correlation gap across several day windows: a single
    # 24 h snapshot (as printed) is illustrative but noisy.
    def run_windows():
        return [
            fig5_snapshot.run(warmup=240, window=48, seed=seed, v=7.5)
            for seed in (0, 1, 2)
        ]

    results = benchmark.pedantic(run_windows, rounds=1, iterations=1)
    gaps = [
        r.always_price_correlation - r.grefar_price_correlation for r in results
    ]
    assert np.mean(gaps) > 0.15
    assert all(g > 0 for g in gaps)


def test_fig5_both_schedulers_process_same_day(benchmark):
    result = run_once(benchmark, fig5_snapshot.run, warmup=96, window=24, seed=0)
    assert result.prices_dc1.shape == (24,)
    # Over the window both process comparable total work (no starvation).
    g = result.grefar_work_dc1.sum()
    a = result.always_work_dc1.sum()
    assert g > 0 and a > 0
