"""Benchmark: fault injection is strictly opt-in.

Acceptance gate for the resilience subsystem: a run with an *empty*
fault schedule must be bit-identical — the very same
``SimulationSummary`` — to a run without any injector installed.  Every
injector hook short-circuits on the empty schedule and returns its
inputs unchanged, so the fault-free hot path stays allocation-free.
"""

from repro.core.grefar import GreFarScheduler
from repro.faults import FaultInjector, FaultSchedule, RandomFaultProcess
from repro.scenarios import paper_scenario
from repro.simulation.simulator import Simulator

from conftest import run_cached

HORIZON = 300


def _pair():
    scenario = paper_scenario(horizon=HORIZON, seed=0)
    cluster = scenario.cluster
    scheduler = GreFarScheduler(cluster, v=7.5, beta=0.0)
    plain = Simulator(scenario, scheduler).run()
    injected = Simulator(
        scenario,
        scheduler,
        injector=FaultInjector(cluster, FaultSchedule.empty()),
    ).run()
    return {"plain": plain, "injected": injected}


def _result(benchmark):
    return run_cached(benchmark, "resilience_noop", _pair)


def test_empty_schedule_run_is_bit_identical(benchmark):
    result = _result(benchmark)
    assert result["plain"].summary == result["injected"].summary


def test_injected_run_reports_no_fault_traffic(benchmark):
    result = _result(benchmark)
    summary = result["injected"].summary
    assert summary.total_evicted_jobs == 0.0
    assert summary.total_requeued_jobs == 0.0


def test_zero_rate_random_process_is_also_a_noop(benchmark):
    result = _result(benchmark)
    scenario = paper_scenario(horizon=HORIZON, seed=0)
    cluster = scenario.cluster
    schedule = RandomFaultProcess().generate(
        horizon=HORIZON, num_datacenters=cluster.num_datacenters, seed=0
    )
    assert schedule.is_empty
    run = Simulator(
        scenario,
        GreFarScheduler(cluster, v=7.5, beta=0.0),
        injector=FaultInjector(cluster, schedule),
    ).run()
    assert run.summary == result["plain"].summary
