"""Emit a machine-tagged benchmark baseline (``BENCH_<date>.json``).

Profiles the standard configurations — the paper scenario with the
greedy-backed GreFar, the fairness (beta > 0) QP path, and the small
scenario — through :func:`repro.obs.profile.profile_run` and writes the
schema-versioned baseline via :mod:`repro.obs.baseline`.  The newest
``BENCH_<date>.json`` is committed at the repo root as the reference
point: the CI ``bench`` job re-emits a quick baseline and gates it with
``python -m repro.obs.baseline --compare`` so an order-of-magnitude
hot-path regression fails the build (the tolerance is generous because
runner hardware varies).  Re-run and re-commit after intentional
performance changes.

Usage::

    PYTHONPATH=src python benchmarks/emit_baseline.py [--output PATH]
        [--horizon 200] [--seed 0] [--quick]
"""

from __future__ import annotations

import argparse
from typing import Optional, Sequence

from repro.core.grefar import GreFarScheduler
from repro.obs.baseline import validate_baseline_file, write_baseline
from repro.obs.profile import profile_run
from repro.scenarios import paper_scenario, small_scenario


def build_reports(horizon: int, seed: int, quick: bool) -> list:
    """One ProfileReport per standard configuration."""
    small = small_scenario(horizon=horizon, seed=seed)
    reports = [
        profile_run(
            small,
            GreFarScheduler(small.cluster, v=10.0),
            scenario_name="small",
        )
    ]
    if quick:
        return reports
    paper = paper_scenario(horizon=horizon, seed=seed)
    reports.append(
        profile_run(
            paper,
            GreFarScheduler(paper.cluster, v=7.5),
            scenario_name="paper",
        )
    )
    reports.append(
        profile_run(
            paper,
            GreFarScheduler(paper.cluster, v=7.5, beta=100.0),
            scenario_name="paper-beta",
        )
    )
    return reports


def main(argv: Optional[Sequence[str]] = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument(
        "--output", default=None, help="baseline path (default BENCH_<date>.json)"
    )
    parser.add_argument("--horizon", type=int, default=200)
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument(
        "--quick",
        action="store_true",
        help="small scenario only (CI smoke mode)",
    )
    args = parser.parse_args(argv)

    reports = build_reports(args.horizon, args.seed, args.quick)
    path = write_baseline(reports, path=args.output)
    errors = validate_baseline_file(path)
    if errors:
        for error in errors:
            print(f"{path}: {error}")
        return 1
    for report in reports:
        print(
            f"{report.scenario}: {report.horizon} slots in "
            f"{report.wall_seconds:.4f}s ({report.slots_per_second:.0f} slots/s)"
        )
    print(f"baseline: {path}")
    return 0


if __name__ == "__main__":
    import sys

    sys.exit(main())
