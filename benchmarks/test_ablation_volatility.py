"""Ablation: GreFar's savings grow with electricity price volatility.

The whole premise of opportunistic scheduling is price variability:
with flat prices GreFar cannot beat "Always" on energy, and its edge
should widen as volatility grows.  Shape check: the GreFar-vs-Always
saving is (weakly) increasing across three volatility levels.
"""

import numpy as np
import pytest

from repro.core.grefar import GreFarScheduler
from repro.scenarios import small_cluster
from repro.schedulers import AlwaysScheduler
from repro.simulation.simulator import Simulator
from repro.simulation.trace import Scenario
from repro.workloads import AvailabilityModel, CosmosWorkload, PriceModel


def _scenario(volatility: float, amplitude: float, seed: int = 0) -> Scenario:
    cluster = small_cluster()
    availability = AvailabilityModel(cluster, floor_fraction=0.8)
    workload = CosmosWorkload(
        cluster,
        mean_total_work=8.0,
        max_total_work=0.85 * availability.min_capacity(),
    )
    prices = PriceModel(
        [0.4, 0.5],
        daily_amplitude=amplitude,
        volatility=volatility,
        mean_reversion=0.2,
    )
    return Scenario.generate(
        cluster,
        horizon=500,
        seed=seed,
        workload=workload,
        price_model=prices,
        availability_model=availability,
    )


def _saving(scenario) -> float:
    grefar = Simulator(scenario, GreFarScheduler(scenario.cluster, v=40.0)).run()
    always = Simulator(scenario, AlwaysScheduler(scenario.cluster)).run()
    base = always.summary.avg_energy_cost
    return (base - grefar.summary.avg_energy_cost) / base


def test_savings_grow_with_volatility(benchmark):
    def sweep():
        settings = [(0.0, 0.0), (0.15, 0.2), (0.4, 0.45)]
        return [
            float(np.mean([_saving(_scenario(v, a, seed)) for seed in (0, 1)]))
            for v, a in settings
        ]

    savings = benchmark.pedantic(sweep, rounds=1, iterations=1)
    # Flat prices: no meaningful edge (both serve all work eventually).
    assert abs(savings[0]) < 0.05
    # The edge grows with volatility.
    assert savings[2] > savings[1] > savings[0] - 0.02
    assert savings[2] > 0.05


def test_flat_prices_leave_no_temporal_arbitrage(benchmark):
    scenario = _scenario(0.0, 0.0)
    saving = benchmark.pedantic(_saving, args=(scenario,), rounds=1, iterations=1)
    assert saving == pytest.approx(0.0, abs=0.05)
