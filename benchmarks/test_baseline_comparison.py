"""Benchmark: GreFar against the full baseline roster.

Beyond the paper's single "Always" comparison, this pits GreFar
against every shipped baseline on the same scenario.  Shape checks:
GreFar's energy beats the price-blind baselines (Always, RoundRobin)
and stays competitive with the tuned heuristic (TroughFilling) and the
forecast-based MPC planner, while keeping its delay bounded.
"""

import pytest

from repro.core.grefar import GreFarScheduler
from repro.scenarios import paper_scenario
from repro.schedulers import (
    AlwaysScheduler,
    RecedingHorizonScheduler,
    RoundRobinScheduler,
    TroughFillingScheduler,
)
from repro.simulation.simulator import Simulator


@pytest.fixture(scope="module")
def scenario():
    return paper_scenario(horizon=400, seed=0)


_CACHE = {}


def _cached(benchmark, scenario):
    def compute():
        key = id(scenario)
        if key not in _CACHE:
            _CACHE[key] = _energies(scenario)
        return _CACHE[key]

    return benchmark.pedantic(compute, rounds=1, iterations=1)


def _energies(scenario):
    cluster = scenario.cluster
    schedulers = {
        "grefar": GreFarScheduler(cluster, v=20.0),
        "grefar-hi": GreFarScheduler(cluster, v=60.0),
        "always": AlwaysScheduler(cluster),
        "roundrobin": RoundRobinScheduler(cluster),
        "trough": TroughFillingScheduler(cluster, quantile=0.35, max_backlog_work=800),
        "mpc-oracle": RecedingHorizonScheduler(
            cluster, window=24, replan_every=6, forecast=scenario
        ),
    }
    out = {}
    for key, scheduler in schedulers.items():
        result = Simulator(scenario, scheduler).run()
        out[key] = result.summary
    return out


def test_grefar_beats_price_blind_baselines(benchmark, scenario):
    summaries = _cached(benchmark, scenario)
    assert summaries["grefar"].avg_energy_cost < summaries["always"].avg_energy_cost
    assert (
        summaries["grefar"].avg_energy_cost < summaries["roundrobin"].avg_energy_cost
    )


def test_grefar_competitive_with_tuned_heuristics(benchmark, scenario):
    """Comparisons at matched *delay* operating points.

    The tuned trough filler and the oracle MPC run at far higher delays
    (they hold work much longer); comparing energies across delay
    points is apples-to-oranges.  GreFar at a matching V ("grefar-hi",
    delay comparable to trough's) must be within 15% of the hand-tuned
    heuristic; against the perfect-information MPC Theorem 1 promises
    only an O(1/V) gap, so demand a bounded factor.
    """
    summaries = _cached(benchmark, scenario)
    assert (
        summaries["grefar-hi"].avg_energy_cost
        < 1.15 * summaries["trough"].avg_energy_cost
    )
    assert (
        summaries["grefar-hi"].avg_energy_cost
        < 1.6 * summaries["mpc-oracle"].avg_energy_cost
    )


def test_everyone_serves_the_workload(benchmark, scenario):
    summaries = _cached(benchmark, scenario)
    for key, summary in summaries.items():
        served_ratio = summary.total_served_jobs / summary.total_arrived_jobs
        assert served_ratio > 0.85, f"{key} left too much work unserved"
