"""Benchmark: regenerate the Fig. 1 three-day trace.

Shape checks: hourly price variation with the Table I mean ordering;
per-organization work that is diurnal, bursty and sporadic (the paper's
evidence that arrivals follow no stationary distribution).
"""

import numpy as np

from repro.experiments import fig1_trace

from conftest import run_once


def test_fig1_price_panel(benchmark):
    result = run_once(benchmark, fig1_trace.run, horizon=72, seed=0)
    assert result.prices.shape == (72, 3)
    # Prices move hour to hour (coefficient of variation per site).
    assert all(cv > 0.1 for cv in result.price_cv)
    # Mean ordering follows Table I over a long trace; the 72 h window
    # is noisy, so only demand the cheapest site stays below the priciest.
    long = fig1_trace.run(horizon=1000, seed=0)
    assert long.price_means[0] < long.price_means[2]
    assert long.price_means[1] < long.price_means[2]


def test_fig1_work_panel(benchmark):
    result = run_once(benchmark, fig1_trace.run, horizon=72, seed=0)
    assert result.org_work.shape == (72, 4)
    # Bursty: peak well above mean for every organization.
    assert all(p > 1.5 for p in result.org_peak_to_mean)
    # Sporadic: at least one organization has near-silent hours.
    assert max(result.org_silent_fraction) > 0.1


def test_fig1_org_work_shares(benchmark):
    """Long-run per-organization work tracks the 40/30/15/15 split."""

    def run_long():
        return fig1_trace.run(horizon=4000, seed=0)

    result = benchmark.pedantic(run_long, rounds=1, iterations=1)
    per_org = result.org_work.mean(axis=0)
    shares = per_org / per_org.sum()
    np.testing.assert_allclose(shares, [0.40, 0.30, 0.15, 0.15], atol=0.07)
