"""Ablation: physical versus literal queue dynamics.

The paper's eqs. (12)-(13) allow the minimizer of (14) to overdraw a
queue (the max[., 0] absorbs it); running *physically* caps routing and
service at queue contents.  The ablation's finding: literal mode routes
``r^max`` into every under-loaded site, inflating the scalar queues
with phantom jobs whose "service" burns real energy — physical mode
delivers the same scheduling structure at a fraction of the energy.
This is why the library defaults to ``physical=True``.
"""

import pytest

from repro.core.grefar import GreFarScheduler
from repro.scenarios import small_scenario
from repro.simulation.simulator import Simulator


@pytest.fixture(scope="module")
def scenario():
    return small_scenario(horizon=250, seed=4)


def _run(scenario, physical: bool):
    scheduler = GreFarScheduler(scenario.cluster, v=10.0, physical=physical)
    return Simulator(
        scenario, scheduler, enforce_physical=False
    ).run()


def test_physical_mode(benchmark, scenario):
    result = benchmark.pedantic(_run, args=(scenario, True), rounds=1, iterations=1)
    # No phantoms: ledger conservation holds exactly.
    arrived = result.summary.total_arrived_jobs
    served = result.summary.total_served_jobs
    assert served + result.queues.total_backlog() == pytest.approx(arrived, abs=1e-6)


def test_literal_mode(benchmark, scenario):
    result = benchmark.pedantic(_run, args=(scenario, False), rounds=1, iterations=1)
    # Literal dynamics may hold phantom jobs: scalar backlog >= real jobs.
    arrived = result.summary.total_arrived_jobs
    served = result.summary.total_served_jobs
    assert result.queues.total_backlog() >= arrived - served - 1e-6


def test_physical_mode_saves_energy_over_literal(benchmark, scenario):
    def both():
        return _run(scenario, True), _run(scenario, False)

    physical, literal = benchmark.pedantic(both, rounds=1, iterations=1)
    # Literal mode pays for phantom service; physical mode does not.
    assert physical.summary.avg_energy_cost <= literal.summary.avg_energy_cost
    # Both serve (essentially) all the real work that arrived.
    for result in (physical, literal):
        arrived = result.summary.total_arrived_jobs
        assert result.summary.total_served_jobs > 0.8 * arrived
