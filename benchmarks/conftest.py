"""Shared fixtures for the benchmark suite.

The figure benchmarks share one 800-slot paper scenario (seed 0): long
enough for the running averages to stabilize and every paper shape to
hold, short enough that the whole suite completes in a few minutes.
Each benchmark times the experiment once (``pedantic`` with one round —
these are end-to-end simulations, not microbenchmarks) and then asserts
the DESIGN.md shape checks on the result.
"""

from __future__ import annotations

import pytest

from repro.scenarios import paper_scenario

#: Horizon used by the figure-level benchmarks.
BENCH_HORIZON = 800


@pytest.fixture(scope="session")
def bench_scenario():
    """The shared paper scenario for all figure benchmarks."""
    return paper_scenario(horizon=BENCH_HORIZON, seed=0)


def run_once(benchmark, func, *args, **kwargs):
    """Time *func* exactly once and return its result."""
    return benchmark.pedantic(func, args=args, kwargs=kwargs, rounds=1, iterations=1)


_EXPERIMENT_CACHE: dict = {}


def run_cached(benchmark, key: str, func, *args, **kwargs):
    """Compute an experiment once per session, reusing it across tests.

    The first test of a module pays the real cost (and times it); the
    shape-check siblings assert on the cached result instead of
    re-simulating the identical sweep.
    """

    def compute():
        if key not in _EXPERIMENT_CACHE:
            _EXPERIMENT_CACHE[key] = func(*args, **kwargs)
        return _EXPERIMENT_CACHE[key]

    return benchmark.pedantic(compute, rounds=1, iterations=1)
