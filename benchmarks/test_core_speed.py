"""Microbenchmarks of the hot paths: simulator throughput and queue ops.

These guard against performance regressions in the inner loop — a
2000-slot paper run must remain a seconds-scale operation.
"""

import numpy as np
import pytest

from repro.core.grefar import GreFarScheduler
from repro.model.action import Action
from repro.model.queues import QueueNetwork
from repro.scenarios import paper_scenario, small_cluster, small_scenario
from repro.schedulers import AlwaysScheduler
from repro.simulation.simulator import Simulator


@pytest.fixture(scope="module")
def small_scn():
    return small_scenario(horizon=200, seed=0)


@pytest.fixture(scope="module")
def paper_scn():
    return paper_scenario(horizon=200, seed=0)


def test_simulator_throughput_small(benchmark, small_scn):
    sim = Simulator(small_scn, GreFarScheduler(small_scn.cluster, v=10.0))
    result = benchmark(sim.run)
    assert result.summary.horizon == 200


def test_simulator_throughput_paper(benchmark, paper_scn):
    sim = Simulator(paper_scn, GreFarScheduler(paper_scn.cluster, v=7.5))
    result = benchmark.pedantic(sim.run, rounds=3, iterations=1)
    assert result.summary.horizon == 200


def test_always_throughput_paper(benchmark, paper_scn):
    sim = Simulator(paper_scn, AlwaysScheduler(paper_scn.cluster))
    result = benchmark.pedantic(sim.run, rounds=3, iterations=1)
    assert result.summary.horizon == 200


def test_queue_step_speed(benchmark):
    cluster = small_cluster()
    rng = np.random.default_rng(0)
    n, j = cluster.num_datacenters, cluster.num_job_types
    elig = cluster.eligibility_matrix()

    def run_steps():
        q = QueueNetwork(cluster)
        for t in range(100):
            route = rng.integers(0, 3, size=(n, j)).astype(float) * elig
            serve = rng.uniform(0, 3, size=(n, j)) * elig
            action = q.clip_to_content(
                Action(route, serve, np.zeros((n, cluster.num_server_classes)))
            )
            q.step(action, rng.integers(0, 4, size=j).astype(float), t)
        return q

    q = benchmark(run_steps)
    assert q.total_backlog() >= 0


def test_grefar_decision_speed(benchmark, paper_scn):
    scheduler = GreFarScheduler(paper_scn.cluster, v=7.5)
    queues = QueueNetwork(paper_scn.cluster)
    queues.step(
        Action.idle(paper_scn.cluster),
        paper_scn.arrivals[0],
        t=0,
    )
    state = paper_scn.state_at(1)
    action = benchmark(scheduler.decide, 1, state, queues)
    action.validate(paper_scn.cluster, state)
