"""Ablation: per-slot solver backends (speed and agreement).

DESIGN.md calls out the solver choice: the closed-form greedy is the
default for beta = 0 because it is orders of magnitude faster than the
scipy LP at identical decisions; the QP backend pays for fairness.
These are true microbenchmarks (many rounds).
"""

import numpy as np
import pytest

from repro.model.state import ClusterState
from repro.optimize import (
    SlotServiceProblem,
    solve_greedy,
    solve_lp,
    solve_projected_gradient,
    solve_qp,
)
from repro.scenarios import paper_cluster


def _slot_problem(beta: float = 0.0, seed: int = 0) -> SlotServiceProblem:
    cluster = paper_cluster()
    rng = np.random.default_rng(seed)
    availability = np.stack(
        [np.floor(dc.max_servers * rng.uniform(0.8, 1.0)) for dc in cluster.datacenters]
    )
    state = ClusterState(availability, rng.uniform(0.2, 0.8, size=3))
    n, j = cluster.num_datacenters, cluster.num_job_types
    return SlotServiceProblem(
        cluster=cluster,
        state=state,
        queue_weights=rng.uniform(0, 30, size=(n, j)),
        h_upper=rng.uniform(0, 20, size=(n, j)),
        v=7.5,
        beta=beta,
    )


@pytest.fixture(scope="module")
def problem():
    return _slot_problem()


@pytest.fixture(scope="module")
def fair_problem():
    return _slot_problem(beta=100.0)


def test_greedy_slot_solver(benchmark, problem):
    h = benchmark(solve_greedy, problem)
    assert problem.is_feasible(h)


def test_lp_slot_solver(benchmark, problem):
    h = benchmark(solve_lp, problem)
    # Identical objective to greedy (exactness cross-check under timing).
    assert problem.objective(h) == pytest.approx(
        problem.objective(solve_greedy(problem)), abs=1e-6
    )


def test_qp_slot_solver_beta(benchmark, fair_problem):
    h = benchmark(solve_qp, fair_problem)
    assert fair_problem.is_feasible(h, tol=1e-5)


def test_projected_gradient_slot_solver(benchmark, problem):
    h = benchmark(solve_projected_gradient, problem)
    assert problem.is_feasible(h, tol=1e-5)


def test_greedy_faster_than_lp(problem, benchmark):
    """The ablation's headline: greedy beats the LP by a wide margin."""
    import time

    def time_of(fn, reps=20):
        start = time.perf_counter()
        for _ in range(reps):
            fn(problem)
        return time.perf_counter() - start

    t_greedy = time_of(solve_greedy)
    t_lp = time_of(solve_lp)
    benchmark.pedantic(lambda: None, rounds=1, iterations=1)
    assert t_greedy < t_lp
