"""Benchmark: a full single-DC outage drill on the paper scenario.

A seeded outage takes data center 2 dark for slots [100, 140) of a
300-slot run.  Shape checks: GreFar stops serving at the dark site and
re-routes its work to the surviving sites; the front-queue overshoot
stays far below the Theorem 1 queue bound ``V*C3/delta`` (which assumes
nothing about the state process, so it keeps holding *through* the
fault); the backlog recovers to its pre-fault level within a fixed,
deterministic number of slots; and the Always / RandomRouting baselines
are reported alongside for comparison.
"""

import numpy as np

from repro.core.bounds import TheoremConstants
from repro.core.grefar import GreFarScheduler
from repro.core.slackness import check_slackness
from repro.faults import FaultInjector, FaultSchedule, ResilienceObserver
from repro.scenarios import paper_scenario
from repro.schedulers import AlwaysScheduler, RandomRoutingScheduler
from repro.simulation.simulator import Simulator

from conftest import run_cached

HORIZON = 300
OUTAGE_DC = 1
OUTAGE_START = 100
OUTAGE_DURATION = 40  # slots [100, 140)
V = 7.5

#: Measured deterministic recovery time (slots after the outage clears)
#: for each scheduler on seed 0.  Fixed seed -> fixed transient.
EXPECTED_RECOVERY = {"grefar": 16, "always": 8, "random": 24}


def _drill():
    scenario = paper_scenario(horizon=HORIZON, seed=0)
    cluster = scenario.cluster
    schedule = FaultSchedule.single_outage(
        dc=OUTAGE_DC, start=OUTAGE_START, duration=OUTAGE_DURATION
    )
    slack = check_slackness(cluster, scenario.arrivals, scenario.availability)
    constants = TheoremConstants.from_scenario(
        cluster, price_cap=float(scenario.prices.max()), beta=0.0
    )
    queue_bound = constants.queue_bound(V, slack.max_delta)

    out = {"queue_bound": queue_bound, "slack_feasible": slack.feasible}
    contenders = {
        "grefar": GreFarScheduler(cluster, v=V, beta=0.0),
        "always": AlwaysScheduler(cluster),
        "random": RandomRoutingScheduler(cluster),
    }
    for key, scheduler in contenders.items():
        injector = FaultInjector(cluster, schedule)
        observer = ResilienceObserver(cluster, schedule, queue_bound=queue_bound)
        result = Simulator(
            scenario, scheduler, injector=injector, observers=[observer]
        ).run()
        out[key] = {
            "report": observer.report(scheduler.name),
            "summary": result.summary,
            "work": result.metrics.work_per_dc_series(),
        }
    return out


def _result(benchmark):
    return run_cached(benchmark, "resilience_outage", _drill)


def test_grefar_recovers_within_measured_slots(benchmark):
    result = _result(benchmark)
    assert result["slack_feasible"]
    impact = result["grefar"]["report"].impacts[0]
    assert impact.recovered
    assert impact.recovery_slots == EXPECTED_RECOVERY["grefar"]


def test_front_queue_overshoot_stays_below_theorem_bound(benchmark):
    result = _result(benchmark)
    report = result["grefar"]["report"]
    assert report.peak_front_queue <= result["queue_bound"]
    assert report.bound_utilization() < 1.0


def test_work_is_rerouted_to_surviving_sites(benchmark):
    result = _result(benchmark)
    work = result["grefar"]["work"]
    window = slice(OUTAGE_START, OUTAGE_START + OUTAGE_DURATION)
    # The dark site serves nothing; the survivors pick up the load.
    assert np.all(work[window, OUTAGE_DC] == 0)
    assert work[:OUTAGE_START, OUTAGE_DC].sum() > 0
    for survivor in (0, 2):
        assert (
            work[window, survivor].mean() > work[:OUTAGE_START, survivor].mean()
        )


def test_evicted_work_is_fully_readmitted(benchmark):
    result = _result(benchmark)
    summary = result["grefar"]["summary"]
    assert summary.total_evicted_jobs > 0
    assert summary.total_requeued_jobs == summary.total_evicted_jobs


def test_baselines_reported_alongside(benchmark):
    result = _result(benchmark)
    for key in ("always", "random"):
        impact = result[key]["report"].impacts[0]
        assert impact.recovered
        assert impact.recovery_slots == EXPECTED_RECOVERY[key]
        assert np.all(
            result[key]["work"][
                OUTAGE_START : OUTAGE_START + OUTAGE_DURATION, OUTAGE_DC
            ]
            == 0
        )


def test_transient_is_deterministic_for_fixed_seed(benchmark):
    result = _result(benchmark)
    repeat = _drill()
    for key in ("grefar", "always", "random"):
        first = result[key]["report"].impacts[0]
        second = repeat[key]["report"].impacts[0]
        assert first.recovery_slots == second.recovery_slots
        assert first.overshoot == second.overshoot
        assert result[key]["summary"] == repeat[key]["summary"]
