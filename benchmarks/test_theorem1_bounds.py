"""Benchmark: verify both Theorem 1 guarantees on a slack trace.

Shape checks: (a) every measured queue length stays below the analytic
bound V*C3/delta for every V; (b) GreFar's time-average cost stays below
the T-step lookahead cost plus (B + D(T-1))/V; and the trends — max
queue non-decreasing in V, measured cost approaching the lookahead
optimum as V grows.
"""

from repro.experiments import theorem1

from conftest import run_cached


def _result(benchmark):
    return run_cached(
        benchmark,
        "theorem1",
        theorem1.run,
        horizon=480,
        lookahead=24,
        seed=0,
        v_values=(1.0, 2.5, 5.0, 10.0, 20.0, 40.0),
    )


def test_queue_bound_holds_for_all_v(benchmark):
    result = _result(benchmark)
    assert result.queue_bound_holds
    for q, bound in zip(result.max_queues, result.queue_bounds):
        assert q <= bound


def test_cost_bound_holds_for_all_v(benchmark):
    result = _result(benchmark)
    assert result.cost_bound_holds
    for g, bound in zip(result.grefar_costs, result.cost_bounds):
        assert g <= bound


def test_cost_gap_shrinks_with_v(benchmark):
    """O(1/V): the analytic gap halves when V doubles, and the measured
    cost moves toward (or below) the lookahead optimum as V grows."""
    result = _result(benchmark)
    analytic_gaps = [b - result.lookahead_cost for b in result.cost_bounds]
    for earlier, later in zip(analytic_gaps, analytic_gaps[1:]):
        assert later < earlier
    # Measured: largest-V cost within the smallest-V cost.
    assert result.grefar_costs[-1] <= result.grefar_costs[0]
